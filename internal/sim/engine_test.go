package sim

import (
	"math"
	"testing"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order %v, want [1 2 3]", got)
	}
}

func TestEngineTiesBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order %v, want ascending scheduling order", got)
		}
	}
}

func TestEngineEventsScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			e.After(2, chain)
		}
	}
	e.Schedule(0, chain)
	end := e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if end != 198 {
		t.Fatalf("final time = %d, want 198", end)
	}
	if e.Executed != 100 {
		t.Fatalf("Executed = %d, want 100", e.Executed)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewEngine().After(-1, func() {})
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// Run again resumes.
	e.Run()
	if ran != 2 {
		t.Fatalf("resume ran %d total, want 2", ran)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Tick
	for _, at := range []Tick{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	now := e.RunUntil(12)
	if now != 12 {
		t.Fatalf("RunUntil returned %d, want 12", now)
	}
	if len(got) != 2 {
		t.Fatalf("executed %v, want events at 5 and 10 only", got)
	}
	// Time advances to the deadline even with an empty window.
	e2 := NewEngine()
	if now := e2.RunUntil(50); now != 50 {
		t.Fatalf("empty RunUntil returned %d, want 50", now)
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEngineNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on empty engine reported a pending event")
	}
	e.Schedule(42, func() {})
	e.Schedule(7, func() {})
	if at, ok := e.NextAt(); !ok || at != 7 {
		t.Fatalf("NextAt = (%d, %v), want (7, true)", at, ok)
	}
	e.Step()
	if at, ok := e.NextAt(); !ok || at != 42 {
		t.Fatalf("NextAt after step = (%d, %v), want (42, true)", at, ok)
	}
}

// TestEngineHeapOrderRandomized cross-checks the 4-ary heap against a large
// randomized schedule: execution must be sorted by (time, seq).
func TestEngineHeapOrderRandomized(t *testing.T) {
	e := NewEngine()
	rng := NewStream(99, "engine-heap")
	const n = 5000
	type fired struct {
		at  Tick
		seq int
	}
	var got []fired
	for i := 0; i < n; i++ {
		i := i
		at := Tick(rng.Intn(1000))
		e.Schedule(at, func() { got = append(got, fired{at: at, seq: i}) })
	}
	e.Run()
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		a, b := got[i-1], got[i]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("events out of order at %d: %+v before %+v", i, a, b)
		}
	}
}

// BenchmarkEngineScheduleStep measures the steady-state cost of one
// schedule+execute cycle, the engine's hot loop in the bank-response model.
func BenchmarkEngineScheduleStep(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.now+3, fn)
		e.Step()
	}
}

// BenchmarkEngineChurn measures a deeper queue: 64 resident events with one
// schedule+pop per iteration, exercising sift-up and sift-down paths.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(Tick(i*7%97), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.now+Tick(i%13)+1, fn)
		e.Step()
	}
}

// BenchmarkEngineRunUntil measures the per-cycle cost of the synchronous
// window flush when the queue is empty — the common case in System.tick.
func BenchmarkEngineRunUntil(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(Tick(i))
	}
}

func TestClockConversions(t *testing.T) {
	c := NewClock(2e9) // 2 GHz
	if got := c.Seconds(2e9); got != 1.0 {
		t.Fatalf("Seconds(2e9) = %g, want 1", got)
	}
	if got := c.Picoseconds(1); math.Abs(got-500) > 1e-9 {
		t.Fatalf("Picoseconds(1) = %g, want 500", got)
	}
	if got := c.TicksFromSeconds(1.0); got != 2_000_000_000 {
		t.Fatalf("TicksFromSeconds(1) = %d", got)
	}
	// Rounds up.
	if got := c.TicksFromSeconds(1.0000000001); got != 2_000_000_001 {
		t.Fatalf("TicksFromSeconds rounding = %d, want 2000000001", got)
	}
}

func TestClockInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-frequency clock did not panic")
		}
	}()
	NewClock(0)
}
