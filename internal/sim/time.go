// Package sim provides the discrete-event simulation kernel shared by every
// model in onocsim: a deterministic event scheduler, a simulated clock, and
// reproducible pseudo-random number streams.
//
// All simulators in this repository are deterministic by construction: given
// the same configuration and seed, two runs produce bit-identical event
// orders and statistics. Determinism is what makes trace capture and trace
// replay comparable at all, so the kernel enforces a total order on events
// (time, then a monotone sequence number) and never consults wall-clock time
// or global randomness.
package sim

import "fmt"

// Tick is a point in simulated time, measured in clock cycles of the global
// system clock. All component clocks in onocsim are expressed as rational
// multiples of this base clock; sub-cycle phenomena (e.g. optical
// serialization at multi-gigabit line rates) are modelled as bits-per-cycle
// capacities rather than fractional ticks.
type Tick int64

// Infinity is a Tick value larger than any reachable simulation time. It is
// used as the "never" sentinel for unresolved dependency times.
const Infinity Tick = 1<<62 - 1

// Never is the "no pending work" sentinel shared by the fabric contract and
// the sharded engine: a component reporting Never from its next-event query
// stays silent forever unless something new is handed to it. It sits above
// Infinity so that min-reductions over mixed sources still terminate.
const Never Tick = 1 << 62

// Cycles converts a non-negative integer cycle count to a Tick duration.
func Cycles(n int64) Tick { return Tick(n) }

// Clock converts between simulated ticks and physical time for reporting.
// The zero value is unusable; construct with NewClock.
type Clock struct {
	freqHz float64 // base clock frequency
}

// NewClock returns a Clock for a base frequency in hertz. It panics if the
// frequency is not positive, because every downstream conversion would be
// meaningless.
func NewClock(freqHz float64) Clock {
	if freqHz <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock frequency %g", freqHz))
	}
	return Clock{freqHz: freqHz}
}

// FreqHz returns the clock frequency in hertz.
func (c Clock) FreqHz() float64 { return c.freqHz }

// Seconds converts a tick count to seconds of simulated time.
func (c Clock) Seconds(t Tick) float64 { return float64(t) / c.freqHz }

// Picoseconds converts a tick count to picoseconds of simulated time.
func (c Clock) Picoseconds(t Tick) float64 { return float64(t) / c.freqHz * 1e12 }

// TicksFromSeconds converts a duration in seconds to whole ticks, rounding
// up so that latencies are never under-reported.
func (c Clock) TicksFromSeconds(s float64) Tick {
	t := s * c.freqHz
	n := Tick(t)
	if float64(n) < t {
		n++
	}
	return n
}
