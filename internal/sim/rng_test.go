package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedIsValid(t *testing.T) {
	r := NewRNG(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("zero seed produced %d zero outputs", zeros)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(42, "alpha")
	b := NewStream(42, "beta")
	aa := NewStream(42, "alpha")
	if a.Uint64() != aa.Uint64() {
		t.Fatal("same label should reproduce the same stream")
	}
	if a.Uint64() == b.Uint64() {
		t.Fatal("different labels should give independent streams")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnCoversRange(t *testing.T) {
	r := NewRNG(9)
	seen := make([]bool, 8)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(8)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(8) never produced %d in 1000 draws", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %g, want ≈0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const rate = 0.25
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp produced negative %g", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.15*(1/rate) {
		t.Fatalf("Exp mean = %g, want ≈%g", mean, 1/rate)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency = %g", p)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(19)
	const p = 0.2
	var sum float64
	const n = 30000
	for i := 0; i < n; i++ {
		v := r.Geometric(p)
		if v < 0 {
			t.Fatalf("Geometric produced negative %d", v)
		}
		sum += float64(v)
	}
	want := (1 - p) / p
	mean := sum / n
	if math.Abs(mean-want) > 0.15*want {
		t.Fatalf("Geometric mean = %g, want ≈%g", mean, want)
	}
	if NewRNG(1).Geometric(1) != 0 {
		t.Fatal("Geometric(1) should be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
