package sim

import (
	"fmt"
	"sync"
)

// ShardRunner is one partition of a conservatively parallel simulation. The
// sharded engine never inspects a runner's internals: it only asks when the
// runner next has work (NextAt) and tells it how far it may safely advance
// (AdvanceTo). A runner owns its shard's state exclusively between barriers,
// so AdvanceTo calls on distinct runners may execute concurrently.
type ShardRunner interface {
	// NextAt returns the earliest time at which this shard has pending
	// work — an event to execute, a message to inject — or Never when the
	// shard is fully drained. It is called only between windows, with no
	// AdvanceTo in flight.
	NextAt() Tick
	// AdvanceTo processes every piece of the shard's work with time ≤
	// horizon and returns. The shard must not act on any event beyond the
	// horizon: the conservative-lookahead contract is that work past it
	// may still be affected by other shards.
	AdvanceTo(horizon Tick)
}

// ShardedEngine advances K shard runners under conservative-lookahead
// synchronization: each round it computes the earliest pending event across
// all shards, extends it by the safe window, lets every runner advance to
// that horizon concurrently, and barriers. The window is derived from the
// model's lookahead — the minimum latency of any cross-shard interaction —
// so events inside a window are causally independent across shards and every
// interleaving of the concurrent advance is equivalent to the sequential
// one. With runners that exchange no messages at all (the degenerate case of
// a fully partitionable model) any window is safe and the engine is pure
// fan-out with a progress barrier.
type ShardedEngine struct {
	runners []ShardRunner
	window  Tick

	// OnBarrier, when set, runs after each window with every runner
	// quiesced at the horizon — the exchange point for models that do
	// route cross-shard traffic. The horizon passed is the one the window
	// just completed.
	OnBarrier func(horizon Tick)

	// Rounds counts completed windows; exported for tests and tuning.
	Rounds int
}

// NewShardedEngine builds an engine over the given runners. window must be
// at least 1; callers derive it from the fabric lookahead (typically a
// multiple of it, trading barrier frequency against exchange latency).
func NewShardedEngine(runners []ShardRunner, window Tick) *ShardedEngine {
	if len(runners) == 0 {
		panic("sim: sharded engine needs at least one runner")
	}
	if window < 1 {
		panic(fmt.Sprintf("sim: sharded window must be ≥1, got %d", window))
	}
	return &ShardedEngine{runners: runners, window: window}
}

// Run advances all runners to completion and returns the time of the last
// processed window's horizon (0 when every runner was born drained). A
// single-runner engine still follows the window protocol, so K=1 exercises
// the same code path as K=N — that is what makes shard-count invariance
// testable.
func (e *ShardedEngine) Run() Tick {
	var last Tick
	for {
		earliest := Never
		for _, r := range e.runners {
			if at := r.NextAt(); at < earliest {
				earliest = at
			}
		}
		if earliest >= Never {
			return last
		}
		horizon := earliest + e.window - 1
		if len(e.runners) == 1 {
			e.runners[0].AdvanceTo(horizon)
		} else {
			var wg sync.WaitGroup
			wg.Add(len(e.runners))
			for _, r := range e.runners {
				go func(r ShardRunner) {
					defer wg.Done()
					r.AdvanceTo(horizon)
				}(r)
			}
			wg.Wait()
		}
		e.Rounds++
		last = horizon
		if e.OnBarrier != nil {
			e.OnBarrier(horizon)
		}
	}
}
