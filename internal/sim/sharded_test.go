package sim

import (
	"sync"
	"testing"
)

// scriptRunner executes a fixed script of event times, recording the horizon
// under which each event ran. It is intentionally trivial: the engine's only
// obligations are (1) never pass a horizon below a runner's next event when
// work remains, (2) advance every runner to completion, (3) barrier between
// windows.
type scriptRunner struct {
	mu     sync.Mutex
	events []Tick // ascending; consumed from the front
	ran    []Tick // event times actually executed
	maxHor Tick   // largest horizon seen
}

func (r *scriptRunner) NextAt() Tick {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) == 0 {
		return Never
	}
	return r.events[0]
}

func (r *scriptRunner) AdvanceTo(horizon Tick) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if horizon > r.maxHor {
		r.maxHor = horizon
	}
	for len(r.events) > 0 && r.events[0] <= horizon {
		r.ran = append(r.ran, r.events[0])
		r.events = r.events[1:]
	}
}

func TestShardedEngineDrainsAllRunners(t *testing.T) {
	a := &scriptRunner{events: []Tick{1, 5, 9, 200}}
	b := &scriptRunner{events: []Tick{3, 7, 300}}
	c := &scriptRunner{events: []Tick{}}
	e := NewShardedEngine([]ShardRunner{a, b, c}, 4)
	last := e.Run()
	if len(a.events) != 0 || len(b.events) != 0 {
		t.Fatalf("events left behind: a=%v b=%v", a.events, b.events)
	}
	if got := len(a.ran) + len(b.ran); got != 7 {
		t.Fatalf("ran %d events, want 7", got)
	}
	if last < 300 {
		t.Fatalf("final horizon %d did not cover last event at 300", last)
	}
	if e.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestShardedEngineWindowsAreMonotone(t *testing.T) {
	a := &scriptRunner{events: []Tick{0, 10, 20, 30, 40}}
	b := &scriptRunner{events: []Tick{5, 15, 25, 35, 45}}
	e := NewShardedEngine([]ShardRunner{a, b}, 3)
	var horizons []Tick
	e.OnBarrier = func(h Tick) { horizons = append(horizons, h) }
	e.Run()
	for i := 1; i < len(horizons); i++ {
		if horizons[i] <= horizons[i-1] {
			t.Fatalf("horizon went backwards: %v", horizons)
		}
	}
	if len(horizons) != e.Rounds {
		t.Fatalf("OnBarrier fired %d times, Rounds=%d", len(horizons), e.Rounds)
	}
}

func TestShardedEngineSingleRunnerEquivalence(t *testing.T) {
	events := []Tick{2, 2, 4, 100, 101}
	solo := &scriptRunner{events: append([]Tick(nil), events...)}
	NewShardedEngine([]ShardRunner{solo}, 8).Run()
	if len(solo.ran) != len(events) {
		t.Fatalf("K=1 ran %d of %d events", len(solo.ran), len(events))
	}
	for i, at := range solo.ran {
		if at != events[i] {
			t.Fatalf("K=1 event order drifted: got %v want %v", solo.ran, events)
		}
	}
}

func TestShardedEngineEmpty(t *testing.T) {
	r := &scriptRunner{}
	e := NewShardedEngine([]ShardRunner{r}, 1)
	if last := e.Run(); last != 0 {
		t.Fatalf("empty run returned horizon %d, want 0", last)
	}
	if e.Rounds != 0 {
		t.Fatalf("empty run recorded %d rounds", e.Rounds)
	}
}

// TestShardedEngineConcurrentStress runs many runners with interleaved event
// times under the race detector; the per-runner mutex models the exclusive
// shard ownership real runners get from data partitioning.
func TestShardedEngineConcurrentStress(t *testing.T) {
	const runners = 8
	rs := make([]ShardRunner, runners)
	total := 0
	for i := 0; i < runners; i++ {
		var ev []Tick
		for t := Tick(i); t < 500; t += Tick(runners + i%3) {
			ev = append(ev, t)
		}
		total += len(ev)
		rs[i] = &scriptRunner{events: ev}
	}
	e := NewShardedEngine(rs, 7)
	e.Run()
	got := 0
	for _, r := range rs {
		sr := r.(*scriptRunner)
		if len(sr.events) != 0 {
			t.Fatalf("runner left with %d events", len(sr.events))
		}
		got += len(sr.ran)
	}
	if got != total {
		t.Fatalf("ran %d of %d events", got, total)
	}
}
