package experiments

import (
	"onocsim"
	"onocsim/internal/metrics"
	"onocsim/internal/workload"
)

// R16Seeds replicates the headline accuracy comparison across independent
// seeds and reports mean ± 95% CI — the statistical-rigor check single-seed
// tables (R1) cannot give. Seeds perturb the synthetic kernels' RNG-driven
// choices and, through them, every timing interleaving downstream.
func R16Seeds(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R16 (extension) — seed sensitivity of methodology accuracy (makespan error, mean ± 95% CI)",
		"kernel", "seeds", "naive err", "naive ±", "sctm err", "sctm ±")
	seeds := []uint64{11, 23, 42, 57, 89}
	kernels := workload.KernelNames()
	if o.Quick {
		seeds = seeds[:2]
		kernels = kernels[:2]
	}
	for _, k := range kernels {
		var naive, sctm metrics.Summary
		for _, seed := range seeds {
			opts := o
			opts.Seed = seed
			cfg := kernelConfig(opts, k)
			cfg.Workload.Jitter = 0.15 // seed-driven compute variation
			tr, _, err := o.Session.CaptureTrace(cfg, onocsim.IdealNet)
			if err != nil {
				return nil, err
			}
			truth, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
			if err != nil {
				return nil, err
			}
			nv, _, err := o.Session.RunNaiveReplay(cfg, tr, onocsim.Optical)
			if err != nil {
				return nil, err
			}
			sc, _, err := o.Session.RunSelfCorrection(cfg, tr, onocsim.Optical)
			if err != nil {
				return nil, err
			}
			naive.Add(metrics.RelErr(float64(nv.Makespan), float64(truth.Makespan)))
			sctm.Add(metrics.RelErr(float64(sc.Final.Makespan), float64(truth.Makespan)))
		}
		t.AddCells(
			metrics.String(k),
			metrics.Int(int64(len(seeds)), "seeds"),
			metrics.Percent(naive.Mean()), metrics.Percent(naive.CI95()),
			metrics.Percent(sctm.Mean()), metrics.Percent(sctm.CI95()),
		)
	}
	t.Note("the correction's advantage must be robust to the seed, not an artifact of one interleaving")
	return t, nil
}
