package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestR9ArchitecturesRows(t *testing.T) {
	tb, err := R9Architectures(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 5 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// SWMR must report higher total power than MWSR (receiver rings).
	for r := 0; r < tb.NumRows(); r++ {
		mwsr := parseF(t, tb.Cell(r, 4))
		swmr := parseF(t, tb.Cell(r, 5))
		if swmr <= mwsr {
			t.Errorf("%s: swmr power %g not above mwsr %g", tb.Cell(r, 0), swmr, mwsr)
		}
	}
}

func TestR10CaptureFabricQuick(t *testing.T) {
	tb, err := R10CaptureFabric(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 { // quick: first two kernels
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// SCTM from any capture fabric must beat naive replay.
	for r := 0; r < tb.NumRows(); r++ {
		naive := parsePct(t, tb.Cell(r, 4))
		for col := 1; col <= 3; col++ {
			if got := parsePct(t, tb.Cell(r, col)); got > naive+2 {
				t.Errorf("%s col %d: sctm %.1f%% worse than naive %.1f%%", tb.Cell(r, 0), col, got, naive)
			}
		}
	}
}

func TestR11DampingRows(t *testing.T) {
	tb, err := R11Damping(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.Cell(0, 0) != "0.00" || tb.Cell(3, 0) != "0.75" {
		t.Fatalf("damping sweep values: %q .. %q", tb.Cell(0, 0), tb.Cell(3, 0))
	}
}

func TestR12HybridQuick(t *testing.T) {
	tb, err := R12Hybrid(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.Cell(0, 6) == "" {
		t.Fatal("best column empty")
	}
}

func TestExtensionsViaByName(t *testing.T) {
	for _, name := range []string{"r9", "r11", "r12"} {
		tb, err := ByName(name, quickOpts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tb.NumRows() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

func TestR13PhotonicsQuick(t *testing.T) {
	tb, err := R13Photonics(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 6 { // quick: 2 node counts × 1 wg × 3 ring losses
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Laser power must grow with node count at fixed losses.
	small := parseF(t, tb.Cell(0, 4))
	large := parseF(t, tb.Cell(3, 4))
	if large <= small {
		t.Fatalf("laser power did not grow with nodes: %g vs %g", small, large)
	}
}

func TestR14WhatIfQuick(t *testing.T) {
	tb, err := R14WhatIf(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if e := parsePct(t, tb.Cell(0, 4)); e > 25 {
		t.Fatalf("what-if prediction error %.1f%% implausibly large", e)
	}
}

func TestR15LeagueQuick(t *testing.T) {
	tb, err := R15League(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Winner column must name one of the designs.
	winner := tb.Cell(0, 7)
	ok := false
	for _, d := range leagueDesigns() {
		if winner == d.name {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("winner %q is not a known design", winner)
	}
}

func TestR16SeedsQuick(t *testing.T) {
	tb, err := R16Seeds(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// SCTM must be accurate in absolute terms, or at least not worse than
	// naive replay (at tiny quick scale both can land in the low single
	// digits, where their ordering is noise).
	for r := 0; r < tb.NumRows(); r++ {
		naive := parsePct(t, tb.Cell(r, 2))
		sctm := parsePct(t, tb.Cell(r, 4))
		if sctm > 5 && sctm > naive+1 {
			t.Errorf("%s: sctm %.1f%% not better than naive %.1f%%", tb.Cell(r, 0), sctm, naive)
		}
	}
}

func TestR17MemoryQuick(t *testing.T) {
	tb, err := R17Memory(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 { // 2 kernels × 2 regimes
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Memory-bound runs must be slower than cache-resident on the same
	// fabric (off-chip traffic costs something).
	for r := 0; r < tb.NumRows(); r += 2 {
		cache := parseF(t, tb.Cell(r, 2))
		mem := parseF(t, tb.Cell(r+1, 2))
		if mem < cache {
			t.Errorf("%s: memory-bound electrical %g faster than cache-resident %g",
				tb.Cell(r, 0), mem, cache)
		}
	}
}
