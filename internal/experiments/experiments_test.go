package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quickOpts keeps experiment tests CI-sized.
var quickOpts = Options{Seed: 42, Cores: 16, Quick: true}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.cores() != 64 {
		t.Fatalf("default cores = %d", o.cores())
	}
	if o.seed() != 42 {
		t.Fatalf("default seed = %d", o.seed())
	}
	o = Options{Cores: 16, Seed: 7}
	if o.cores() != 16 || o.seed() != 7 {
		t.Fatal("explicit options ignored")
	}
}

func TestR1R2ShareStudySet(t *testing.T) {
	t1, t2, err := R1R2(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if t1.NumRows() != 5 || t2.NumRows() != 5 {
		t.Fatalf("rows: r1=%d r2=%d, want 5 kernels each", t1.NumRows(), t2.NumRows())
	}
	// R1's first column cycles through the kernels.
	if t1.Cell(0, 0) != "fft" || t1.Cell(2, 0) != "stencil" {
		t.Fatalf("kernel order wrong: %q %q", t1.Cell(0, 0), t1.Cell(2, 0))
	}
}

func TestR3ConvergenceRows(t *testing.T) {
	tb, err := R3Convergence(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() < 4 {
		t.Fatalf("too few convergence rows: %d", tb.NumRows())
	}
	// Round numbering starts at 0 for each kernel.
	if tb.Cell(0, 1) != "0" {
		t.Fatalf("first round = %q", tb.Cell(0, 1))
	}
}

func TestR4QuickSweep(t *testing.T) {
	tb, err := R4LoadLatency(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode: 1 pattern × 2 rates × 2 fabrics.
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", tb.NumRows())
	}
	if !strings.Contains(tb.String(), "electrical") || !strings.Contains(tb.String(), "optical") {
		t.Fatal("missing fabric rows")
	}
}

func TestR5CaseStudyRows(t *testing.T) {
	tb, err := R5CaseStudy(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 5 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if !strings.Contains(tb.String(), "geometric-mean") {
		t.Fatal("missing speedup note")
	}
}

func TestR6PowerRows(t *testing.T) {
	tb, err := R6Power(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 10 { // 5 kernels × 2 fabrics
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if !strings.Contains(tb.String(), "laser") {
		t.Fatal("optical breakdown missing laser component")
	}
}

func TestR7ScalingQuick(t *testing.T) {
	tb, err := R7Scaling(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 { // quick: 16 and 64 cores
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.Cell(0, 0) != "16" || tb.Cell(1, 0) != "64" {
		t.Fatalf("sizes: %q %q", tb.Cell(0, 0), tb.Cell(1, 0))
	}
}

func TestR8AblationShowsDegradation(t *testing.T) {
	tb, err := R8Ablation(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 5 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// For every kernel, the full model must beat the no-causal ablation
	// (dropping request→response edges destroys the schedule).
	for r := 0; r < tb.NumRows(); r++ {
		full := parsePct(t, tb.Cell(r, 1))
		noCausal := parsePct(t, tb.Cell(r, 3))
		if noCausal <= full {
			t.Errorf("%s: no-causal (%g%%) not worse than full (%g%%)", tb.Cell(r, 0), noCausal, full)
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("r99", quickOpts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Names()) != 20 {
		t.Fatalf("Names() = %v", Names())
	}
	if Known("r99") || !Known("r20") {
		t.Fatal("Known misclassifies experiment names")
	}
}

func TestByNameDispatch(t *testing.T) {
	for _, name := range []string{"r1", "r5"} {
		tb, err := ByName(name, quickOpts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tb.NumRows() == 0 {
			t.Fatalf("%s produced empty table", name)
		}
	}
}

func TestHelpers(t *testing.T) {
	if mean(nil) != 0 {
		t.Fatal("mean of empty")
	}
	if mean([]float64{1, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if got := topComponents(map[string]float64{"a": 1, "b": 5, "c": 3}, 2); got != "b=5.0, c=3.0" {
		t.Fatalf("topComponents = %q", got)
	}
	if ratio(0, 0) != 0 {
		t.Fatal("ratio zero divisor")
	}
}
