package experiments

import (
	"reflect"
	"testing"
)

func TestR18FaultsQuick(t *testing.T) {
	tb, err := R18Faults(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 6 { // 3 presets × 2 fabrics
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Fault-free rows must report zero events in every counter column.
	for r := 0; r < 2; r++ {
		for c := 6; c <= 9; c++ {
			if tb.Cell(r, c) != "0" {
				t.Errorf("off row %d col %d = %q, want 0", r, c, tb.Cell(r, c))
			}
		}
	}
	// The heavy preset must actually fire on the optical crossbar.
	heavy := 0
	for c := 6; c <= 9; c++ {
		heavy += int(parseF(t, tb.Cell(4, c)))
	}
	if heavy == 0 {
		t.Error("heavy preset produced no fault events on the optical fabric")
	}
}

// TestR18Deterministic pins the tentpole guarantee at the experiment level:
// the same options replay the same fault schedules, cell for cell.
func TestR18Deterministic(t *testing.T) {
	a, err := R18Faults(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := R18Faults(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < 10; c++ {
			if a.Cell(r, c) != b.Cell(r, c) {
				t.Errorf("cell (%d,%d): %q vs %q", r, c, a.Cell(r, c), b.Cell(r, c))
			}
		}
	}
	if !reflect.DeepEqual(a.NumRows(), b.NumRows()) {
		t.Fatal("row counts differ")
	}
}
