package experiments

import (
	"onocsim"
	"onocsim/internal/config"
	"onocsim/internal/metrics"
)

// R18Faults measures graceful degradation under deterministic optical fault
// injection: for each fault preset and fabric it reports the execution-driven
// truth makespan, the slowdown versus the fault-free run on the same fabric,
// the accuracy of naive replay and the self-correction model under the same
// fault schedule, and the per-class fault counters. The ideal-fabric capture
// is shared across every row (faults never touch the capture fabric), so the
// sweep adds no capture work on a warm session. Options.Faults is ignored:
// this experiment owns its fault sections.
func R18Faults(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R18 (extension) — fault injection: degraded throughput and self-correction accuracy (stencil kernel)",
		"faults", "fabric", "truth makespan", "slowdown", "naive err", "sctm err",
		"token losses", "drifted", "derated", "rerouted")
	base := kernelConfig(o, "stencil")
	base.Faults = config.Faults{}
	tr, _, err := o.Session.CaptureTrace(base, onocsim.IdealNet)
	if err != nil {
		return nil, err
	}
	fabrics := []struct {
		name string
		kind onocsim.NetworkKind
	}{
		{"optical", onocsim.Optical},
		{"hybrid", onocsim.Hybrid},
	}
	// Fault-free makespan per fabric, denominator for the slowdown column.
	baseline := map[string]float64{}
	for _, preset := range []string{"off", "light", "heavy"} {
		f, err := config.FaultPreset(preset)
		if err != nil {
			return nil, err
		}
		for _, fb := range fabrics {
			cfg := base
			cfg.Faults = f
			truth, err := o.Session.RunExecutionDriven(cfg, fb.kind)
			if err != nil {
				return nil, err
			}
			nv, _, err := o.Session.RunNaiveReplay(cfg, tr, fb.kind)
			if err != nil {
				return nil, err
			}
			sc, _, err := o.Session.RunSelfCorrection(cfg, tr, fb.kind)
			if err != nil {
				return nil, err
			}
			slow := metrics.Ratio(1, 2)
			if preset == "off" {
				baseline[fb.name] = float64(truth.Makespan)
			} else if b := baseline[fb.name]; b > 0 {
				slow = metrics.Ratio(float64(truth.Makespan)/b, 2)
			}
			fc := truth.Faults
			t.AddCells(
				metrics.String(preset), metrics.String(fb.name),
				cycles(truth.Makespan), slow,
				metrics.Percent(metrics.RelErr(float64(nv.Makespan), float64(truth.Makespan))),
				metrics.Percent(metrics.RelErr(float64(sc.Final.Makespan), float64(truth.Makespan))),
				metrics.Int(int64(fc.TokenLosses), "events"),
				metrics.Int(int64(fc.DriftedSends), "events"),
				metrics.Int(int64(fc.DeratedSends), "events"),
				metrics.Int(int64(fc.Rerouted), "events"))
		}
	}
	t.Note("fault schedules are seeded: the same (seed, faults) pair replays the same outages on any shard count")
	t.Note("hybrid reroutes droop-blacklisted lightpaths over the electrical mesh (the rerouted column)")
	return t, nil
}
