package experiments

import (
	"strconv"
	"testing"
)

func TestR19SeedingQuick(t *testing.T) {
	tb, err := R19Seeding(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 15 { // 5 kernels × 3 fabrics
		t.Fatalf("rows = %d", tb.NumRows())
	}
	for r := 0; r < tb.NumRows(); r++ {
		zl, err := strconv.Atoi(tb.Cell(r, 2))
		if err != nil {
			t.Fatalf("row %d: bad zero-load rounds %q", r, tb.Cell(r, 2))
		}
		an, err := strconv.Atoi(tb.Cell(r, 3))
		if err != nil {
			t.Fatalf("row %d: bad analytic rounds %q", r, tb.Cell(r, 3))
		}
		if an > zl {
			t.Errorf("row %d (%s/%s): analytic seeding took %d rounds, zero-load %d",
				r, tb.Cell(r, 0), tb.Cell(r, 1), an, zl)
		}
	}
	// The fast path must actually save rounds somewhere: at least one row
	// with strictly fewer analytic rounds, else the experiment's headline
	// claim is hollow.
	savedSomewhere := false
	for r := 0; r < tb.NumRows(); r++ {
		zl, _ := strconv.Atoi(tb.Cell(r, 2))
		an, _ := strconv.Atoi(tb.Cell(r, 3))
		if an < zl {
			savedSomewhere = true
			break
		}
	}
	if !savedSomewhere {
		t.Error("analytic seeding saved no rounds on any kernel/fabric")
	}
	// Screening error bands must be present and parseable percentages.
	for r := 0; r < tb.NumRows(); r++ {
		for _, c := range []int{9, 10, 11} {
			parsePct(t, tb.Cell(r, c))
		}
	}
}

func TestR19KernelConfigSeedMode(t *testing.T) {
	o := quickOpts
	o.SeedMode = "analytic"
	cfg := kernelConfig(o, "stencil")
	if cfg.SCTM.Seed != "analytic" {
		t.Fatalf("SCTM.Seed = %q, want analytic", cfg.SCTM.Seed)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
