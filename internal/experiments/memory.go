package experiments

import (
	"onocsim"
	"onocsim/internal/metrics"
	"onocsim/internal/workload"
)

// R17Memory tests the founding hypothesis of ONOC proposals — photonics
// pays off on memory-bound traffic — end to end: each kernel runs in a
// cache-resident regime (folded memory latency, large L2) and in a
// memory-bound regime (4 corner memory controllers, small L2, so every L2
// miss crosses the chip as real traffic), on both fabrics. The metric is
// the optical:electrical makespan ratio in each regime.
func R17Memory(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R17 (extension) — memory-bound traffic and the optical advantage",
		"kernel", "regime", "electrical", "optical", "optical/electrical")
	kernels := workload.KernelNames()
	if o.Quick {
		kernels = kernels[:2]
	}
	for _, k := range kernels {
		for _, regime := range []string{"cache-resident", "memory-bound"} {
			cfg := kernelConfig(o, k)
			if regime == "memory-bound" {
				cfg.System.MemPorts = 4
				cfg.System.L2SetsPerBank = 4
				cfg.System.L2Ways = 1
			}
			elec, err := o.Session.RunExecutionDriven(cfg, onocsim.Electrical)
			if err != nil {
				return nil, err
			}
			opt, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
			if err != nil {
				return nil, err
			}
			t.AddCells(
				metrics.String(k), metrics.String(regime),
				cycles(elec.Makespan),
				cycles(opt.Makespan),
				metrics.Float(float64(opt.Makespan)/float64(elec.Makespan), 2, ""),
			)
		}
	}
	t.Note("ratio < 1 means optical wins; the all-to-all kernels shift toward the crossbar under memory traffic,")
	t.Note("while neighbor-local kernels shift away: corner controllers hotspot a few MWSR home channels,")
	t.Note("which is exactly why Corona provisions dedicated memory channels")
	return t, nil
}
