package experiments

import (
	"context"

	"onocsim/internal/config"
	"onocsim/internal/metrics"
	"onocsim/internal/sweep"
)

// R20DesignSpace runs the standard design-space sweep grid through the batch
// pipeline (internal/sweep): fabric kind x radix x WDM degree x fault preset
// x kernel, identity-collapsed, analytically prefiltered, survivors
// simulated, reduced to the latency/throughput/power Pareto front. The table
// is the front; the notes carry the grid accounting — how much of the design
// space the analytic model screened out before any fabric was ticked.
func R20DesignSpace(o Options) (*metrics.Table, error) {
	spec := config.DefaultSweep()
	spec.Normalize()
	spec.Seed = o.seed()
	spec.Quick = o.Quick
	res, err := sweep.Run(context.Background(), spec, sweep.Options{
		Session:  o.Session,
		Progress: o.Progress,
	})
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		"R20 (extension) — design-space sweep: Pareto front over latency, throughput and power",
		"arm", "latency", "throughput", "power")
	for _, p := range res.FrontPoints {
		t.AddCells(
			metrics.String(p.Label),
			metrics.Float(p.LatencyCycles, 2, "cyc"),
			metrics.Float(p.ThroughputBpc, 3, "B/cyc"),
			metrics.Float(p.PowerMW, 2, "mW"),
		)
	}
	t.Note("%d grid arms -> %d unique jobs; %d pruned by analytic prefilter (%.0f%%), %d simulated, %d on front",
		res.Arms, res.UniqueJobs, res.Pruned,
		100*float64(res.Pruned)/float64(res.UniqueJobs), res.Simulated, len(res.FrontPoints))
	t.Note("power is the design's static floor (laser/tuning for photonic fabrics, leakage for the mesh); throughput is delivered payload bytes per makespan cycle")
	return t, nil
}
