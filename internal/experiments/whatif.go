package experiments

import (
	"onocsim"
	"onocsim/internal/metrics"
	"onocsim/internal/photonics"
	"onocsim/internal/trace"
)

// R13Photonics sweeps the dominant physical-layer parameters of the
// crossbar's loss budget and reports the resulting laser power — the
// loss-budget table every ONOC paper carries, here regenerated from the
// device model.
func R13Photonics(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R13 (extension) — photonic loss-budget sensitivity (laser wall-plug power)",
		"nodes", "waveguide dB/cm", "ring-through dB", "worst loss dB", "laser W", "tuning W", "rings")
	nodes := []int{16, 64, 256}
	wgLoss := []float64{0.5, 1.0, 2.0}
	ringLoss := []float64{0.005, 0.01, 0.05}
	if o.Quick {
		nodes = []int{16, 64}
		wgLoss = []float64{1.0}
	}
	for _, n := range nodes {
		for _, wg := range wgLoss {
			for _, rl := range ringLoss {
				p := photonics.DefaultDeviceParams()
				p.WaveguideLossDBPerCm = wg
				p.RingThroughLossDB = rl
				b, err := photonics.ComputeBudget(p, photonics.CrossbarGeometry{
					Nodes:                 n,
					WavelengthsPerChannel: 16,
					DieEdgeCm:             2,
				})
				if err != nil {
					return nil, err
				}
				t.AddCells(
					metrics.Int(int64(n), "nodes"),
					metrics.DB(wg, 2),
					metrics.DB(rl, 3),
					metrics.DB(b.WorstLossDB, 1),
					metrics.Float(b.LaserPowerMW/1000, 2, "W"),
					metrics.Float(b.TuningPowerMW/1000, 2, "W"),
					metrics.Int(int64(b.TotalRings), "rings"),
				)
			}
		}
	}
	t.Note("ring-through loss scales with (nodes-2)×wavelengths on the worst path: the crossbar's scaling wall")
	return t, nil
}

// R14WhatIf validates the trace-transformation methodology: predict the
// makespan of a chip with scaled core speed from ONE trace captured at the
// baseline speed (scaling only core-compute gaps, then self-correcting on
// the target fabric), and compare against ground-truth re-simulation at the
// scaled speed. This is the capture-once-predict-many workflow the trace
// model exists to enable, quantified.
func R14WhatIf(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R14 (extension) — core-speed what-if from one trace (target: optical)",
		"kernel", "compute scale", "predicted makespan", "true makespan", "error")
	kernels := []string{"stencil", "lu"}
	scales := []float64{0.5, 2.0, 4.0}
	if o.Quick {
		kernels = kernels[:1]
		scales = []float64{2.0}
	}
	isCompute := func(e *trace.Event) bool { return e.Kind == trace.KindRequest }
	for _, k := range kernels {
		base := kernelConfig(o, k)
		tr, _, err := o.Session.CaptureTrace(base, onocsim.IdealNet)
		if err != nil {
			return nil, err
		}
		for _, s := range scales {
			scaled, err := tr.ScaleGapsWhere(s, isCompute)
			if err != nil {
				return nil, err
			}
			pred, _, err := o.Session.RunSelfCorrection(base, scaled, onocsim.Optical)
			if err != nil {
				return nil, err
			}
			truthCfg := base
			truthCfg.Workload.ComputeScale = s
			truth, err := o.Session.RunExecutionDriven(truthCfg, onocsim.Optical)
			if err != nil {
				return nil, err
			}
			t.AddCells(
				metrics.String(k),
				metrics.Ratio(s, 1),
				cycles(pred.Final.Makespan),
				cycles(truth.Makespan),
				metrics.Percent(metrics.RelErr(float64(pred.Final.Makespan), float64(truth.Makespan))),
			)
		}
	}
	t.Note("prediction uses the baseline trace only — the scaled chip is never re-captured")
	return t, nil
}
