package experiments

import (
	"onocsim"
	"onocsim/internal/metrics"
	"onocsim/internal/workload"
)

// R19Seeding evaluates the analytical fast path on both of its jobs. As a
// warm start it compares the self-correction loop under zero-load and
// analytic round-0 seeding per kernel and contended fabric: replay rounds,
// wall clock, the round reduction, and the relative drift between the two
// converged makespans (0.0% when the arms stop at the same fixpoint; with
// loose tolerances a warm start may legitimately stop a round earlier at a
// near-fixpoint within tolerance of the other). As a screening model it
// reports the closed-form estimate against the simulated result: makespan
// and mean-latency error bands. Options.SeedMode is ignored: this experiment
// owns both seeding arms. The zero-load arm runs with the legacy empty seed
// mode, so on a warm session it shares its self-correction results with the
// other experiments.
func R19Seeding(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R19 (extension) — analytical fast path: seeding savings and screening error",
		"kernel", "fabric", "rounds (zero-load)", "rounds (analytic)", "rounds saved",
		"wall (zero-load)", "wall (analytic)",
		"makespan est", "makespan sim", "makespan err", "mean-latency err", "final drift",
		"replayed (zero-load)", "replayed (analytic)")
	fabrics := []onocsim.NetworkKind{onocsim.Optical, onocsim.Electrical, onocsim.Hybrid}
	for _, k := range workload.KernelNames() {
		cfg := kernelConfig(o, k)
		cfg.SCTM.Seed = ""
		tr, _, err := o.Session.CaptureTrace(cfg, onocsim.IdealNet)
		if err != nil {
			return nil, err
		}
		for _, kind := range fabrics {
			zl, zlWall, err := o.Session.RunSelfCorrection(cfg, tr, kind)
			if err != nil {
				return nil, err
			}
			acfg := cfg
			acfg.SCTM.Seed = "analytic"
			an, anWall, err := o.Session.RunSelfCorrection(acfg, tr, kind)
			if err != nil {
				return nil, err
			}
			est, _, err := o.Session.Estimate(cfg, tr, kind)
			if err != nil {
				return nil, err
			}
			var saved float64
			if rz := len(zl.Iterations); rz > 0 {
				saved = float64(rz-len(an.Iterations)) / float64(rz)
			}
			t.AddCells(
				metrics.String(k), metrics.String(string(kind)),
				metrics.Int(int64(len(zl.Iterations)), "rounds"),
				metrics.Int(int64(len(an.Iterations)), "rounds"),
				metrics.Percent(saved),
				metrics.Duration(zlWall), metrics.Duration(anWall),
				cycles(est.Makespan), cycles(zl.Final.Makespan),
				metrics.Percent(metrics.RelErr(float64(est.Makespan), float64(zl.Final.Makespan))),
				metrics.Percent(metrics.RelErr(est.MeanLatency, zl.Final.MeanLatency)),
				metrics.Percent(metrics.RelErr(float64(an.Final.Makespan), float64(zl.Final.Makespan))),
				metrics.Int(int64(zl.ReplayedEvents), "events"),
				metrics.Int(int64(an.ReplayedEvents), "events"),
			)
		}
	}
	return t, nil
}
