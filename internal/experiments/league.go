package experiments

import (
	"fmt"

	"onocsim"
	"onocsim/internal/metrics"
	"onocsim/internal/workload"
)

// fabricDesign names one interconnect configuration for the league table.
type fabricDesign struct {
	name   string
	kind   onocsim.NetworkKind
	mutate func(*onocsim.Config)
}

// leagueDesigns is every fabric this repository implements, in report order.
func leagueDesigns() []fabricDesign {
	return []fabricDesign{
		{"mesh-xy", onocsim.Electrical, nil},
		{"mesh-wf", onocsim.Electrical, func(c *onocsim.Config) { c.Mesh.Routing = "westfirst" }},
		{"torus", onocsim.Electrical, func(c *onocsim.Config) { c.Mesh.Topology = "torus"; c.Mesh.VCs = 6 }},
		{"mwsr", onocsim.Optical, nil},
		{"swmr", onocsim.Optical, func(c *onocsim.Config) { c.Optical.Architecture = "swmr" }},
		{"hybrid-4", onocsim.Hybrid, func(c *onocsim.Config) { c.Hybrid.Threshold = 4 }},
	}
}

// R15League runs every kernel on every fabric and reports the completion
// time league table — the consolidated design-space view that the
// per-pair experiments (R5, R9, R12) sample.
func R15League(o Options) (*metrics.Table, error) {
	designs := leagueDesigns()
	cols := []string{"kernel"}
	for _, d := range designs {
		cols = append(cols, d.name)
	}
	cols = append(cols, "winner")
	t := metrics.NewTable("R15 (extension) — fabric league table (makespan, cycles)", cols...)
	kernels := workload.KernelNames()
	if o.Quick {
		kernels = kernels[:2]
	}
	for _, k := range kernels {
		row := []metrics.Cell{metrics.String(k)}
		winner, best := "", int64(1)<<62
		for _, d := range designs {
			cfg := kernelConfig(o, k)
			if d.mutate != nil {
				d.mutate(&cfg)
			}
			res, err := o.Session.RunExecutionDriven(cfg, d.kind)
			if err != nil {
				return nil, fmt.Errorf("experiments: league %s/%s: %w", k, d.name, err)
			}
			row = append(row, cycles(res.Makespan))
			if int64(res.Makespan) < best {
				best, winner = int64(res.Makespan), d.name
			}
		}
		row = append(row, metrics.String(winner))
		t.AddCells(row...)
	}
	t.Note("execution-driven, identical programs and seeds on every fabric")
	return t, nil
}
