// Package experiments regenerates every table and figure of the
// reconstructed evaluation (R1–R18, see DESIGN.md §3). Each experiment is
// declared as a Descriptor in the registry (registry.go) — identity, cost
// class, the shared simulations it consumes, and a Run function returning a
// typed metrics.Table; cmd/expreport renders them as ASCII, CSV or
// versioned JSON, and the root bench_test.go wraps each in a testing.B
// benchmark so `go test -bench` reproduces the whole evaluation.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"onocsim"
	"onocsim/internal/config"
	"onocsim/internal/metrics"
	"onocsim/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Cores is the chip size for the kernel experiments (perfect square,
	// power of two for fft); 0 means 64.
	Cores int
	// Quick shrinks sweeps for use inside benchmarks and CI.
	Quick bool
	// Session memoizes simulation results across experiments: the same
	// (config, fabric, operation) triple — e.g. the optical ground truth
	// of a kernel, needed by R1, R3, R5, R6, R8… — is computed once and
	// shared. nil runs every simulation afresh (every call site is
	// nil-safe), except under All, which creates a session for the run.
	// Tables are byte-identical either way, except that cached wall-clock
	// cells report the one computation that actually ran.
	Session *onocsim.Session
	// Parallel fans independent experiments out concurrently (bounded by
	// the library's process-wide simulation-slot semaphore), deduplicating
	// shared runs through Session instead of racing. Only All consults it;
	// the per-experiment functions are sequential internally apart from
	// the study-set fan-out.
	Parallel bool
	// Shards sets Config.Parallelism.Shards on every experiment config:
	// replay-family runs split their fabric across this many shards of the
	// conservative-lookahead engine. Results are byte-identical for any
	// value (0 and 1 both mean serial); only wall-clock cells can differ.
	Shards int
	// Faults applies an optical fault-injection section to every kernel
	// experiment config. The zero value leaves all experiments fault-free.
	// R18 ignores it and sweeps the presets itself.
	Faults config.Faults
	// SeedMode sets Config.SCTM.Seed on every experiment config: the
	// round-0 latency seeding strategy of the self-correction loop
	// (zeroload, analytic, fixed). Empty keeps the legacy default. R19
	// ignores it and compares the modes itself.
	SeedMode string
	// Incremental sets Config.SCTM.Incremental on every experiment config:
	// self-correction rounds resume from frozen-prefix checkpoints instead
	// of replaying from cycle zero. Like Shards, it is an execution detail —
	// tables are byte-identical apart from wall-clock cells and the
	// replayed-events counters, which report the work actually performed.
	Incremental bool
	// Progress observes the run: experiment start/finish events from the
	// registry dispatch, and — when it is also installed on the Session
	// (All does this for sessions it creates; other callers use
	// Session.SetProgress) — simulation computed/cache-hit events. nil
	// disables observation. Implementations must be safe for concurrent
	// use under Parallel.
	Progress onocsim.Progress
}

func (o Options) cores() int {
	if o.Cores > 0 {
		return o.Cores
	}
	return 64
}

func (o Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 42
}

// kernelConfig builds the standard experiment config for one kernel.
func kernelConfig(o Options, kernel string) onocsim.Config {
	cfg := onocsim.DefaultConfig()
	cfg.Seed = o.seed()
	cfg.System.Cores = o.cores()
	cfg.Workload.Kind = config.WorkloadKernel
	cfg.Workload.Kernel = kernel
	if o.Quick {
		cfg.Workload.Scale = 4
		cfg.Workload.Iterations = 2
	}
	if o.Shards > 0 {
		cfg.Parallelism.Shards = o.Shards
	}
	cfg.Faults = o.Faults
	cfg.SCTM.Seed = o.SeedMode
	cfg.SCTM.Incremental = o.Incremental
	cfg.Name = fmt.Sprintf("%s-%dc", kernel, cfg.System.Cores)
	return cfg
}

// pct renders a fraction as a percentage string (for notes; table cells use
// metrics.Percent).
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// cycles makes an integer cell measured in clock cycles.
func cycles(v onocsim.Tick) metrics.Cell { return metrics.Int(int64(v), "cycles") }

// studySet runs the full methodology study for each kernel once and caches
// the results so that R1, R2 and R3 share work.
type studySet struct {
	kernels []string
	studies map[string]*onocsim.Study
}

func newStudySet(o Options) (*studySet, error) {
	s := &studySet{kernels: workload.KernelNames(), studies: map[string]*onocsim.Study{}}
	// Studies are independent simulations with per-study state, so they
	// parallelize trivially; each remains internally deterministic. The
	// fan-out is bounded by the CPU count so that the per-study wall
	// times R2 reports are not inflated by oversubscription (on a single
	// CPU this degenerates to sequential execution, which is exactly what
	// honest timing needs there).
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.NumCPU())
	for _, k := range s.kernels {
		k := k
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			st, err := o.Session.RunStudy(kernelConfig(o, k), onocsim.Optical)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("experiments: study %s: %w", k, err)
				return
			}
			s.studies[k] = st
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s, nil
}

// R1Accuracy reconstructs the headline accuracy table: per-application total
// execution time estimated by naive replay, coupled replay, and the
// Self-Correction Trace Model, each against execution-driven ground truth on
// the optical fabric.
func R1Accuracy(o Options) (*metrics.Table, error) {
	set, err := newStudySet(o)
	if err != nil {
		return nil, err
	}
	return r1FromSet(set)
}

func r1FromSet(set *studySet) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R1 — Accuracy of trace methodologies vs execution-driven ONOC simulation",
		"kernel", "truth makespan", "naive est", "naive err", "sctm est", "sctm err",
		"coupled est", "coupled err", "trace events")
	var naiveErrs, sctmErrs []float64
	for _, k := range set.kernels {
		st := set.studies[k]
		t.AddCells(
			metrics.String(k),
			cycles(st.Truth.Makespan),
			cycles(st.Naive.Makespan), metrics.Percent(st.NaiveAcc.MakespanErr),
			cycles(st.SCTM.Final.Makespan), metrics.Percent(st.SCTMAcc.MakespanErr),
			cycles(st.Coupled.Makespan), metrics.Percent(st.CoupAcc.MakespanErr),
			metrics.Int(int64(st.Trace.NumEvents()), "events"),
		)
		naiveErrs = append(naiveErrs, st.NaiveAcc.MakespanErr)
		sctmErrs = append(sctmErrs, st.SCTMAcc.MakespanErr)
	}
	t.Note("mean abs makespan error: naive %s, sctm %s (lower is better; paper claims 'high precision')",
		pct(mean(naiveErrs)), pct(mean(sctmErrs)))
	return t, nil
}

// R2SimTime reconstructs the simulation-cost table: host wall-clock of each
// methodology, and the speedup of SCTM over execution-driven simulation.
func R2SimTime(o Options) (*metrics.Table, error) {
	set, err := newStudySet(o)
	if err != nil {
		return nil, err
	}
	return r2FromSet(set)
}

func r2FromSet(set *studySet) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R2 — Simulation cost (host milliseconds)",
		"kernel", "exec-driven", "capture(ref)", "naive", "sctm", "sctm rounds",
		"sctm vs exec", "sctm vs naive", "events replayed", "cycles saved")
	for _, k := range set.kernels {
		st := set.studies[k]
		execW := st.Truth.WallTime
		sctmW := st.SCTMWall
		t.AddCells(
			metrics.String(k),
			metrics.Duration(execW), metrics.Duration(st.CaptureWall),
			metrics.Duration(st.NaiveWall), metrics.Duration(sctmW),
			metrics.Int(int64(len(st.SCTM.Iterations)), "rounds"),
			metrics.Ratio(ratio(execW, sctmW), 2),
			metrics.Ratio(ratio(sctmW, st.NaiveWall), 1),
			metrics.Int(int64(st.SCTM.ReplayedEvents), "events"),
			cycles(st.SCTM.SavedCycles),
		)
	}
	t.Note("the paper claims the method does 'not substantially extend the total simulation time' vs trace-driven")
	t.Note("events replayed counts per-round replay work; under sctm.incremental the frozen prefix is skipped and 'cycles saved' sums the checkpoint resume times")
	return t, nil
}

// R1R2 runs the shared study set once and returns both tables.
func R1R2(o Options) (*metrics.Table, *metrics.Table, error) {
	set, err := newStudySet(o)
	if err != nil {
		return nil, nil, err
	}
	t1, err := r1FromSet(set)
	if err != nil {
		return nil, nil, err
	}
	t2, err := r2FromSet(set)
	if err != nil {
		return nil, nil, err
	}
	return t1, t2, nil
}

// R3Convergence reconstructs the convergence figure: per-round schedule
// delta and makespan error of the self-correction loop.
func R3Convergence(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R3 — Self-correction convergence (one series per kernel)",
		"kernel", "round", "schedule delta", "makespan est", "err vs truth")
	for _, k := range workload.KernelNames() {
		cfg := kernelConfig(o, k)
		tr, _, err := o.Session.CaptureTrace(cfg, onocsim.IdealNet)
		if err != nil {
			return nil, err
		}
		truth, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		res, _, err := o.Session.RunSelfCorrection(cfg, tr, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		for _, it := range res.Iterations {
			t.AddCells(
				metrics.String(k),
				metrics.Int(int64(it.Round), "rounds"),
				cycles(it.Delta),
				cycles(it.Makespan),
				metrics.Percent(metrics.RelErr(float64(it.Makespan), float64(truth.Makespan))),
			)
		}
	}
	return t, nil
}

// R4LoadLatency reconstructs the load–latency case-study figure: synthetic
// traffic sweeps on both fabrics.
func R4LoadLatency(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R4 — Load vs latency, electrical mesh vs optical crossbar",
		"pattern", "offered (flits/node/cyc)", "fabric", "mean lat", "p99 lat", "throughput", "saturated")
	patterns := []string{"uniform", "transpose", "hotspot"}
	rates := []float64{0.02, 0.05, 0.10, 0.20, 0.35, 0.50}
	packets := 300
	if o.Quick {
		patterns = []string{"uniform"}
		rates = []float64{0.05, 0.20}
		packets = 100
	}
	for _, pat := range patterns {
		for _, rate := range rates {
			for _, kind := range []onocsim.NetworkKind{onocsim.Electrical, onocsim.Optical} {
				cfg := onocsim.DefaultConfig()
				cfg.Seed = o.seed()
				cfg.System.Cores = o.cores()
				cfg.Workload = config.Workload{
					Kind:          config.WorkloadSynthetic,
					Pattern:       pat,
					InjectionRate: rate,
					PacketBytes:   64,
					Packets:       packets,
					Kernel:        "stencil",
					Scale:         1,
					Iterations:    1,
					ComputeScale:  1,
				}
				res, err := o.Session.RunSyntheticLoad(cfg, kind)
				if err != nil {
					return nil, err
				}
				t.AddCells(
					metrics.String(pat),
					metrics.Float(rate, 2, "flits/node/cyc"),
					metrics.String(string(kind)),
					metrics.Float(res.MeanLatency, 1, "cycles"),
					metrics.Float(res.P99Latency, 0, "cycles"),
					metrics.Float(res.Throughput, 3, "flits/node/cyc"),
					metrics.Bool(res.Saturated),
				)
			}
		}
	}
	return t, nil
}

// R5CaseStudy reconstructs the application case study: kernel completion
// time execution-driven on the baseline electrical NoC vs the ONOC.
func R5CaseStudy(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R5 — Case study: application completion time, electrical vs optical",
		"kernel", "electrical makespan", "optical makespan", "optical speedup",
		"elec mean lat", "opt mean lat")
	var speedups []float64
	for _, k := range workload.KernelNames() {
		cfg := kernelConfig(o, k)
		e, err := o.Session.RunExecutionDriven(cfg, onocsim.Electrical)
		if err != nil {
			return nil, err
		}
		op, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		sp := float64(e.Makespan) / float64(op.Makespan)
		speedups = append(speedups, sp)
		t.AddCells(
			metrics.String(k),
			cycles(e.Makespan),
			cycles(op.Makespan),
			metrics.Ratio(sp, 2),
			metrics.Float(e.MeanLatency, 1, "cycles"),
			metrics.Float(op.MeanLatency, 1, "cycles"),
		)
	}
	t.Note("geometric-mean optical speedup: %.2fx", metrics.GeoMean(speedups))
	return t, nil
}

// R6Power reconstructs the power-breakdown table over the kernel workloads.
func R6Power(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R6 — Network power (mW) over kernel workloads",
		"kernel", "fabric", "static", "dynamic", "total", "dominant components")
	for _, k := range workload.KernelNames() {
		cfg := kernelConfig(o, k)
		for _, kind := range []onocsim.NetworkKind{onocsim.Electrical, onocsim.Optical} {
			res, err := o.Session.RunExecutionDriven(cfg, kind)
			if err != nil {
				return nil, err
			}
			p := res.Power
			t.AddCells(
				metrics.String(k), metrics.String(string(kind)),
				metrics.Float(p.StaticMW, 1, "mW"),
				metrics.Float(p.DynamicMW, 2, "mW"),
				metrics.Float(p.TotalMW(), 1, "mW"),
				metrics.String(topComponents(p.Breakdown, 2)),
			)
		}
	}
	t.Note("optical static power is laser + ring tuning and dominates at low utilization — the canonical ONOC trade-off")
	return t, nil
}

// R7Scaling reconstructs the methodology-scalability figure: SCTM error and
// cost versus core count.
func R7Scaling(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R7 — SCTM scalability with core count (stencil kernel)",
		"cores", "truth makespan", "sctm err", "naive err", "exec ms", "sctm ms", "trace events")
	sizes := []int{16, 64, 144, 256}
	if o.Quick {
		sizes = []int{16, 64}
	}
	for _, n := range sizes {
		opts := o
		opts.Cores = n
		cfg := kernelConfig(opts, "stencil")
		st, err := o.Session.RunStudy(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		t.AddCells(
			metrics.Int(int64(n), "cores"),
			cycles(st.Truth.Makespan),
			metrics.Percent(st.SCTMAcc.MakespanErr),
			metrics.Percent(st.NaiveAcc.MakespanErr),
			metrics.Duration(st.Truth.WallTime),
			metrics.Duration(st.SCTMWall),
			metrics.Int(int64(st.Trace.NumEvents()), "events"),
		)
	}
	return t, nil
}

// R8Ablation reconstructs the dependency-class ablation: the error of the
// self-correction model with synchronization or causal edges disabled.
func R8Ablation(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R8 — Why dependencies matter: SCTM error with dependency classes ablated",
		"kernel", "full model", "no sync deps", "no causal deps")
	for _, k := range workload.KernelNames() {
		cfg := kernelConfig(o, k)
		tr, _, err := o.Session.CaptureTrace(cfg, onocsim.IdealNet)
		if err != nil {
			return nil, err
		}
		truth, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		errFor := func(noSync, noCausal bool) (float64, error) {
			c := cfg
			c.SCTM.DisableSyncDeps = noSync
			c.SCTM.DisableCausalDeps = noCausal
			res, _, err := o.Session.RunSelfCorrection(c, tr, onocsim.Optical)
			if err != nil {
				return 0, err
			}
			return metrics.RelErr(float64(res.Final.Makespan), float64(truth.Makespan)), nil
		}
		full, err := errFor(false, false)
		if err != nil {
			return nil, err
		}
		noSync, err := errFor(true, false)
		if err != nil {
			return nil, err
		}
		noCausal, err := errFor(false, true)
		if err != nil {
			return nil, err
		}
		t.AddCells(metrics.String(k), metrics.Percent(full), metrics.Percent(noSync), metrics.Percent(noCausal))
	}
	return t, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// topComponents names the n largest breakdown entries.
func topComponents(m map[string]float64, n int) string {
	type kv struct {
		k string
		v float64
	}
	var list []kv
	for k, v := range m {
		list = append(list, kv{k, v})
	}
	for i := 0; i < len(list); i++ {
		for j := i + 1; j < len(list); j++ {
			if list[j].v > list[i].v || (list[j].v == list[i].v && list[j].k < list[i].k) {
				list[i], list[j] = list[j], list[i]
			}
		}
	}
	if n > len(list) {
		n = len(list)
	}
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%.1f", list[i].k, list[i].v)
	}
	return out
}
