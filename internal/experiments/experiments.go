// Package experiments regenerates every table and figure of the
// reconstructed evaluation (R1–R8, see DESIGN.md §3). Each experiment is a
// function returning a metrics.Table; cmd/expreport renders them to the
// terminal or CSV, and the root bench_test.go wraps each in a testing.B
// benchmark so `go test -bench` reproduces the whole evaluation.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"onocsim"
	"onocsim/internal/config"
	"onocsim/internal/metrics"
	"onocsim/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Cores is the chip size for the kernel experiments (perfect square,
	// power of two for fft); 0 means 64.
	Cores int
	// Quick shrinks sweeps for use inside benchmarks and CI.
	Quick bool
	// Session memoizes simulation results across experiments: the same
	// (config, fabric, operation) triple — e.g. the optical ground truth
	// of a kernel, needed by R1, R3, R5, R6, R8… — is computed once and
	// shared. nil runs every simulation afresh (every call site is
	// nil-safe). Tables are byte-identical either way, except that cached
	// wall-clock cells report the one computation that actually ran.
	Session *onocsim.Session
	// Parallel fans independent experiments out concurrently (bounded by
	// the library's process-wide simulation-slot semaphore), deduplicating
	// shared runs through Session instead of racing. Only All consults it;
	// the per-experiment functions are sequential internally apart from
	// the study-set fan-out.
	Parallel bool
	// Shards sets Config.Parallelism.Shards on every experiment config:
	// replay-family runs split their fabric across this many shards of the
	// conservative-lookahead engine. Results are byte-identical for any
	// value (0 and 1 both mean serial); only wall-clock cells can differ.
	Shards int
	// Faults applies an optical fault-injection section to every kernel
	// experiment config. The zero value leaves all experiments fault-free.
	// R18 ignores it and sweeps the presets itself.
	Faults config.Faults
}

func (o Options) cores() int {
	if o.Cores > 0 {
		return o.Cores
	}
	return 64
}

func (o Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 42
}

// kernelConfig builds the standard experiment config for one kernel.
func kernelConfig(o Options, kernel string) onocsim.Config {
	cfg := onocsim.DefaultConfig()
	cfg.Seed = o.seed()
	cfg.System.Cores = o.cores()
	cfg.Workload.Kind = config.WorkloadKernel
	cfg.Workload.Kernel = kernel
	if o.Quick {
		cfg.Workload.Scale = 4
		cfg.Workload.Iterations = 2
	}
	if o.Shards > 0 {
		cfg.Parallelism.Shards = o.Shards
	}
	cfg.Faults = o.Faults
	cfg.Name = fmt.Sprintf("%s-%dc", kernel, cfg.System.Cores)
	return cfg
}

// pct renders a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// ms renders a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }

// studySet runs the full methodology study for each kernel once and caches
// the results so that R1, R2 and R3 share work.
type studySet struct {
	kernels []string
	studies map[string]*onocsim.Study
}

func newStudySet(o Options) (*studySet, error) {
	s := &studySet{kernels: workload.KernelNames(), studies: map[string]*onocsim.Study{}}
	// Studies are independent simulations with per-study state, so they
	// parallelize trivially; each remains internally deterministic. The
	// fan-out is bounded by the CPU count so that the per-study wall
	// times R2 reports are not inflated by oversubscription (on a single
	// CPU this degenerates to sequential execution, which is exactly what
	// honest timing needs there).
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.NumCPU())
	for _, k := range s.kernels {
		k := k
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			st, err := o.Session.RunStudy(kernelConfig(o, k), onocsim.Optical)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("experiments: study %s: %w", k, err)
				return
			}
			s.studies[k] = st
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s, nil
}

// R1Accuracy reconstructs the headline accuracy table: per-application total
// execution time estimated by naive replay, coupled replay, and the
// Self-Correction Trace Model, each against execution-driven ground truth on
// the optical fabric.
func R1Accuracy(o Options) (*metrics.Table, error) {
	set, err := newStudySet(o)
	if err != nil {
		return nil, err
	}
	return r1FromSet(set)
}

func r1FromSet(set *studySet) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R1 — Accuracy of trace methodologies vs execution-driven ONOC simulation",
		"kernel", "truth makespan", "naive est", "naive err", "sctm est", "sctm err",
		"coupled est", "coupled err", "trace events")
	var naiveErrs, sctmErrs []float64
	for _, k := range set.kernels {
		st := set.studies[k]
		t.AddRow(k,
			fmt.Sprintf("%d", st.Truth.Makespan),
			fmt.Sprintf("%d", st.Naive.Makespan), pct(st.NaiveAcc.MakespanErr),
			fmt.Sprintf("%d", st.SCTM.Final.Makespan), pct(st.SCTMAcc.MakespanErr),
			fmt.Sprintf("%d", st.Coupled.Makespan), pct(st.CoupAcc.MakespanErr),
			fmt.Sprintf("%d", st.Trace.NumEvents()),
		)
		naiveErrs = append(naiveErrs, st.NaiveAcc.MakespanErr)
		sctmErrs = append(sctmErrs, st.SCTMAcc.MakespanErr)
	}
	t.Note("mean abs makespan error: naive %s, sctm %s (lower is better; paper claims 'high precision')",
		pct(mean(naiveErrs)), pct(mean(sctmErrs)))
	return t, nil
}

// R2SimTime reconstructs the simulation-cost table: host wall-clock of each
// methodology, and the speedup of SCTM over execution-driven simulation.
func R2SimTime(o Options) (*metrics.Table, error) {
	set, err := newStudySet(o)
	if err != nil {
		return nil, err
	}
	return r2FromSet(set)
}

func r2FromSet(set *studySet) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R2 — Simulation cost (host milliseconds)",
		"kernel", "exec-driven", "capture(ref)", "naive", "sctm", "sctm rounds",
		"sctm vs exec", "sctm vs naive")
	for _, k := range set.kernels {
		st := set.studies[k]
		execW := st.Truth.WallTime
		sctmW := st.SCTMWall
		t.AddRow(k,
			ms(execW), ms(st.CaptureWall), ms(st.NaiveWall), ms(sctmW),
			fmt.Sprintf("%d", len(st.SCTM.Iterations)),
			fmt.Sprintf("%.2fx", ratio(execW, sctmW)),
			fmt.Sprintf("%.1fx", ratio(sctmW, st.NaiveWall)),
		)
	}
	t.Note("the paper claims the method does 'not substantially extend the total simulation time' vs trace-driven")
	return t, nil
}

// R1R2 runs the shared study set once and returns both tables.
func R1R2(o Options) (*metrics.Table, *metrics.Table, error) {
	set, err := newStudySet(o)
	if err != nil {
		return nil, nil, err
	}
	t1, err := r1FromSet(set)
	if err != nil {
		return nil, nil, err
	}
	t2, err := r2FromSet(set)
	if err != nil {
		return nil, nil, err
	}
	return t1, t2, nil
}

// R3Convergence reconstructs the convergence figure: per-round schedule
// delta and makespan error of the self-correction loop.
func R3Convergence(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R3 — Self-correction convergence (one series per kernel)",
		"kernel", "round", "schedule delta", "makespan est", "err vs truth")
	for _, k := range workload.KernelNames() {
		cfg := kernelConfig(o, k)
		tr, _, err := o.Session.CaptureTrace(cfg, onocsim.IdealNet)
		if err != nil {
			return nil, err
		}
		truth, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		res, _, err := o.Session.RunSelfCorrection(cfg, tr, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		for _, it := range res.Iterations {
			t.AddRow(k,
				fmt.Sprintf("%d", it.Round),
				fmt.Sprintf("%d", it.Delta),
				fmt.Sprintf("%d", it.Makespan),
				pct(metrics.RelErr(float64(it.Makespan), float64(truth.Makespan))),
			)
		}
	}
	return t, nil
}

// R4LoadLatency reconstructs the load–latency case-study figure: synthetic
// traffic sweeps on both fabrics.
func R4LoadLatency(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R4 — Load vs latency, electrical mesh vs optical crossbar",
		"pattern", "offered (flits/node/cyc)", "fabric", "mean lat", "p99 lat", "throughput", "saturated")
	patterns := []string{"uniform", "transpose", "hotspot"}
	rates := []float64{0.02, 0.05, 0.10, 0.20, 0.35, 0.50}
	packets := 300
	if o.Quick {
		patterns = []string{"uniform"}
		rates = []float64{0.05, 0.20}
		packets = 100
	}
	for _, pat := range patterns {
		for _, rate := range rates {
			for _, kind := range []onocsim.NetworkKind{onocsim.Electrical, onocsim.Optical} {
				cfg := onocsim.DefaultConfig()
				cfg.Seed = o.seed()
				cfg.System.Cores = o.cores()
				cfg.Workload = config.Workload{
					Kind:          config.WorkloadSynthetic,
					Pattern:       pat,
					InjectionRate: rate,
					PacketBytes:   64,
					Packets:       packets,
					Kernel:        "stencil",
					Scale:         1,
					Iterations:    1,
					ComputeScale:  1,
				}
				res, err := o.Session.RunSyntheticLoad(cfg, kind)
				if err != nil {
					return nil, err
				}
				t.AddRow(pat,
					fmt.Sprintf("%.2f", rate),
					string(kind),
					fmt.Sprintf("%.1f", res.MeanLatency),
					fmt.Sprintf("%.0f", res.P99Latency),
					fmt.Sprintf("%.3f", res.Throughput),
					fmt.Sprintf("%v", res.Saturated),
				)
			}
		}
	}
	return t, nil
}

// R5CaseStudy reconstructs the application case study: kernel completion
// time execution-driven on the baseline electrical NoC vs the ONOC.
func R5CaseStudy(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R5 — Case study: application completion time, electrical vs optical",
		"kernel", "electrical makespan", "optical makespan", "optical speedup",
		"elec mean lat", "opt mean lat")
	var speedups []float64
	for _, k := range workload.KernelNames() {
		cfg := kernelConfig(o, k)
		e, err := o.Session.RunExecutionDriven(cfg, onocsim.Electrical)
		if err != nil {
			return nil, err
		}
		op, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		sp := float64(e.Makespan) / float64(op.Makespan)
		speedups = append(speedups, sp)
		t.AddRow(k,
			fmt.Sprintf("%d", e.Makespan),
			fmt.Sprintf("%d", op.Makespan),
			fmt.Sprintf("%.2fx", sp),
			fmt.Sprintf("%.1f", e.MeanLatency),
			fmt.Sprintf("%.1f", op.MeanLatency),
		)
	}
	t.Note("geometric-mean optical speedup: %.2fx", metrics.GeoMean(speedups))
	return t, nil
}

// R6Power reconstructs the power-breakdown table over the kernel workloads.
func R6Power(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R6 — Network power (mW) over kernel workloads",
		"kernel", "fabric", "static", "dynamic", "total", "dominant components")
	for _, k := range workload.KernelNames() {
		cfg := kernelConfig(o, k)
		for _, kind := range []onocsim.NetworkKind{onocsim.Electrical, onocsim.Optical} {
			res, err := o.Session.RunExecutionDriven(cfg, kind)
			if err != nil {
				return nil, err
			}
			p := res.Power
			t.AddRow(k, string(kind),
				fmt.Sprintf("%.1f", p.StaticMW),
				fmt.Sprintf("%.2f", p.DynamicMW),
				fmt.Sprintf("%.1f", p.TotalMW()),
				topComponents(p.Breakdown, 2),
			)
		}
	}
	t.Note("optical static power is laser + ring tuning and dominates at low utilization — the canonical ONOC trade-off")
	return t, nil
}

// R7Scaling reconstructs the methodology-scalability figure: SCTM error and
// cost versus core count.
func R7Scaling(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R7 — SCTM scalability with core count (stencil kernel)",
		"cores", "truth makespan", "sctm err", "naive err", "exec ms", "sctm ms", "trace events")
	sizes := []int{16, 64, 144, 256}
	if o.Quick {
		sizes = []int{16, 64}
	}
	for _, n := range sizes {
		opts := o
		opts.Cores = n
		cfg := kernelConfig(opts, "stencil")
		st, err := o.Session.RunStudy(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", st.Truth.Makespan),
			pct(st.SCTMAcc.MakespanErr),
			pct(st.NaiveAcc.MakespanErr),
			ms(st.Truth.WallTime),
			ms(st.SCTMWall),
			fmt.Sprintf("%d", st.Trace.NumEvents()),
		)
	}
	return t, nil
}

// R8Ablation reconstructs the dependency-class ablation: the error of the
// self-correction model with synchronization or causal edges disabled.
func R8Ablation(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R8 — Why dependencies matter: SCTM error with dependency classes ablated",
		"kernel", "full model", "no sync deps", "no causal deps")
	for _, k := range workload.KernelNames() {
		cfg := kernelConfig(o, k)
		tr, _, err := o.Session.CaptureTrace(cfg, onocsim.IdealNet)
		if err != nil {
			return nil, err
		}
		truth, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		errFor := func(noSync, noCausal bool) (float64, error) {
			c := cfg
			c.SCTM.DisableSyncDeps = noSync
			c.SCTM.DisableCausalDeps = noCausal
			res, _, err := o.Session.RunSelfCorrection(c, tr, onocsim.Optical)
			if err != nil {
				return 0, err
			}
			return metrics.RelErr(float64(res.Final.Makespan), float64(truth.Makespan)), nil
		}
		full, err := errFor(false, false)
		if err != nil {
			return nil, err
		}
		noSync, err := errFor(true, false)
		if err != nil {
			return nil, err
		}
		noCausal, err := errFor(false, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(k, pct(full), pct(noSync), pct(noCausal))
	}
	return t, nil
}

// All runs every experiment and returns the tables in canonical order
// (Names() order). Sequentially by default; with o.Parallel the experiments
// fan out concurrently — actual simulation concurrency stays bounded by the
// library's simulation-slot semaphore, and shared (config, fabric, op) runs
// deduplicate through o.Session (one is created for the run if the caller
// supplied none, since parallel experiments without deduplication would
// race to redo identical work).
func All(o Options) ([]*metrics.Table, error) {
	if o.Parallel {
		return allParallel(o)
	}
	var out []*metrics.Table
	t1, t2, err := R1R2(o)
	if err != nil {
		return nil, err
	}
	out = append(out, t1, t2)
	for _, fn := range []func(Options) (*metrics.Table, error){
		R3Convergence, R4LoadLatency, R5CaseStudy, R6Power, R7Scaling, R8Ablation,
		R9Architectures, R10CaptureFabric, R11Damping, R12Hybrid, R13Photonics, R14WhatIf, R15League, R16Seeds, R17Memory, R18Faults,
	} {
		t, err := fn(o)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// allParallel is the parallel experiment scheduler: every experiment runs
// on its own goroutine and tables are collected in canonical order. The
// per-experiment goroutines are cheap coordinators — all heavy work happens
// in the leaf simulation operations, which both bound concurrency (each
// holds one process-wide simulation slot for its timed region) and
// deduplicate (concurrent requests for one result single-flight through the
// session). The first error wins, in canonical experiment order so failures
// are deterministic.
func allParallel(o Options) ([]*metrics.Table, error) {
	if o.Session == nil {
		o.Session = onocsim.NewSession("")
	}
	names := Names()
	tables := make([]*metrics.Table, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			tables[i], errs[i] = ByName(name, o)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", names[i], err)
		}
	}
	return tables, nil
}

// Names lists experiment identifiers accepted by cmd/expreport. R1–R8
// reconstruct the paper's evaluation; R9–R11 are extensions.
func Names() []string {
	return []string{"r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15", "r16", "r17", "r18"}
}

// Known reports whether name identifies an experiment runnable by ByName.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// ByName runs one experiment by its identifier.
func ByName(name string, o Options) (*metrics.Table, error) {
	switch name {
	case "r1":
		return R1Accuracy(o)
	case "r2":
		return R2SimTime(o)
	case "r3":
		return R3Convergence(o)
	case "r4":
		return R4LoadLatency(o)
	case "r5":
		return R5CaseStudy(o)
	case "r6":
		return R6Power(o)
	case "r7":
		return R7Scaling(o)
	case "r8":
		return R8Ablation(o)
	case "r9":
		return R9Architectures(o)
	case "r10":
		return R10CaptureFabric(o)
	case "r11":
		return R11Damping(o)
	case "r12":
		return R12Hybrid(o)
	case "r13":
		return R13Photonics(o)
	case "r14":
		return R14WhatIf(o)
	case "r15":
		return R15League(o)
	case "r16":
		return R16Seeds(o)
	case "r17":
		return R17Memory(o)
	case "r18":
		return R18Faults(o)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// topComponents names the n largest breakdown entries.
func topComponents(m map[string]float64, n int) string {
	type kv struct {
		k string
		v float64
	}
	var list []kv
	for k, v := range m {
		list = append(list, kv{k, v})
	}
	for i := 0; i < len(list); i++ {
		for j := i + 1; j < len(list); j++ {
			if list[j].v > list[i].v || (list[j].v == list[i].v && list[j].k < list[i].k) {
				list[i], list[j] = list[j], list[i]
			}
		}
	}
	if n > len(list) {
		n = len(list)
	}
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%.1f", list[i].k, list[i].v)
	}
	return out
}
