package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"onocsim"
	"onocsim/internal/metrics"
)

// CostClass coarsely ranks an experiment's simulation cost; the parallel
// scheduler uses it (together with Needs) as a launch-order hint, and
// `expreport -list` surfaces it so users can budget a run.
type CostClass string

const (
	// CostLight experiments are analytic or near-instant (no full-system
	// simulation).
	CostLight CostClass = "light"
	// CostMedium experiments run a handful of simulations.
	CostMedium CostClass = "medium"
	// CostHeavy experiments sweep many full-system simulations.
	CostHeavy CostClass = "heavy"
)

// Need names a family of shared simulation results an experiment consumes
// through the session cache. Declaring needs replaces the implicit
// session-dedup knowledge that used to live in comments: the scheduler
// launches experiments whose needs are most widely shared first, so the
// shared results are computed (once) as early as possible and later
// experiments find settled cache entries instead of queueing as waiters.
type Need string

const (
	// NeedStudies is the full methodology study (capture, ground truth,
	// three replays) of every kernel at baseline options.
	NeedStudies Need = "kernel-studies"
	// NeedIdealCapture is the per-kernel trace capture on the ideal
	// reference fabric.
	NeedIdealCapture Need = "ideal-capture"
	// NeedOpticalTruth is the per-kernel execution-driven ground truth on
	// the optical crossbar.
	NeedOpticalTruth Need = "optical-truth"
	// NeedElectricalTruth is the per-kernel execution-driven ground truth
	// on the electrical mesh.
	NeedElectricalTruth Need = "electrical-truth"
	// NeedHybridTruth is the per-kernel execution-driven ground truth on
	// the hybrid fabric.
	NeedHybridTruth Need = "hybrid-truth"
)

// Descriptor declares one experiment: identity, prose, cost, the shared
// simulations it consumes, and how to run it. The registry of descriptors
// is the single source the scheduler, `-exp` resolution, `-list`, and the
// renderers iterate — adding an experiment is adding a descriptor.
type Descriptor struct {
	// ID is the experiment identifier accepted by cmd/expreport ("r1").
	ID string
	// Title is the headline of the experiment's table.
	Title string
	// Summary is a one-line description for listings.
	Summary string
	// CostClass coarsely ranks the experiment's simulation cost.
	CostClass CostClass
	// Needs lists the shared simulation families the experiment consumes.
	Needs []Need
	// Run produces the experiment's table.
	Run func(Options) (*metrics.Table, error)
}

// registry is the canonical experiment list, in report order. R1–R8
// reconstruct the paper's evaluation; R9–R19 are extensions.
var registry = []Descriptor{
	{
		ID:        "r1",
		Title:     "Accuracy of trace methodologies vs execution-driven ONOC simulation",
		Summary:   "headline accuracy: naive replay, SCTM and coupled replay vs ground truth, per kernel",
		CostClass: CostHeavy,
		Needs:     []Need{NeedStudies, NeedIdealCapture, NeedOpticalTruth},
		Run:       R1Accuracy,
	},
	{
		ID:        "r2",
		Title:     "Simulation cost (host milliseconds)",
		Summary:   "host wall-clock of each methodology and SCTM's speedup over execution-driven",
		CostClass: CostHeavy,
		Needs:     []Need{NeedStudies, NeedIdealCapture, NeedOpticalTruth},
		Run:       R2SimTime,
	},
	{
		ID:        "r3",
		Title:     "Self-correction convergence (one series per kernel)",
		Summary:   "per-round schedule delta and makespan error of the correction loop",
		CostClass: CostMedium,
		Needs:     []Need{NeedIdealCapture, NeedOpticalTruth},
		Run:       R3Convergence,
	},
	{
		ID:        "r4",
		Title:     "Load vs latency, electrical mesh vs optical crossbar",
		Summary:   "synthetic traffic sweeps on both fabrics",
		CostClass: CostMedium,
		Needs:     nil,
		Run:       R4LoadLatency,
	},
	{
		ID:        "r5",
		Title:     "Case study: application completion time, electrical vs optical",
		Summary:   "kernel completion time execution-driven on both fabrics",
		CostClass: CostMedium,
		Needs:     []Need{NeedElectricalTruth, NeedOpticalTruth},
		Run:       R5CaseStudy,
	},
	{
		ID:        "r6",
		Title:     "Network power (mW) over kernel workloads",
		Summary:   "static/dynamic power breakdown per kernel and fabric",
		CostClass: CostMedium,
		Needs:     []Need{NeedElectricalTruth, NeedOpticalTruth},
		Run:       R6Power,
	},
	{
		ID:        "r7",
		Title:     "SCTM scalability with core count (stencil kernel)",
		Summary:   "SCTM error and cost versus core count",
		CostClass: CostHeavy,
		Needs:     []Need{NeedStudies},
		Run:       R7Scaling,
	},
	{
		ID:        "r8",
		Title:     "Why dependencies matter: SCTM error with dependency classes ablated",
		Summary:   "correction accuracy with sync or causal edges disabled",
		CostClass: CostMedium,
		Needs:     []Need{NeedIdealCapture, NeedOpticalTruth},
		Run:       R8Ablation,
	},
	{
		ID:        "r9",
		Title:     "MWSR vs SWMR optical crossbar (extension)",
		Summary:   "token-arbitrated vs broadcast crossbar on makespan and power",
		CostClass: CostMedium,
		Needs:     []Need{NeedOpticalTruth},
		Run:       R9Architectures,
	},
	{
		ID:        "r10",
		Title:     "SCTM accuracy vs capture fabric (extension)",
		Summary:   "sensitivity of the correction to the fabric the trace was captured on",
		CostClass: CostMedium,
		Needs:     []Need{NeedIdealCapture, NeedOpticalTruth},
		Run:       R10CaptureFabric,
	},
	{
		ID:        "r11",
		Title:     "Correction-loop damping sweep (extension)",
		Summary:   "rounds to convergence and final error across damping factors",
		CostClass: CostMedium,
		Needs:     []Need{NeedIdealCapture, NeedOpticalTruth},
		Run:       R11Damping,
	},
	{
		ID:        "r12",
		Title:     "Path-adaptive hybrid NoC (extension)",
		Summary:   "makespan versus the optical-distance threshold of the hybrid fabric",
		CostClass: CostMedium,
		Needs:     []Need{NeedElectricalTruth, NeedOpticalTruth, NeedHybridTruth},
		Run:       R12Hybrid,
	},
	{
		ID:        "r13",
		Title:     "Photonic loss-budget sensitivity (extension)",
		Summary:   "laser power versus waveguide/ring losses and node count (analytic)",
		CostClass: CostLight,
		Needs:     nil,
		Run:       R13Photonics,
	},
	{
		ID:        "r14",
		Title:     "Core-speed what-if from one trace (extension)",
		Summary:   "scaled-gap prediction from one capture vs re-simulated ground truth",
		CostClass: CostMedium,
		Needs:     []Need{NeedIdealCapture, NeedOpticalTruth},
		Run:       R14WhatIf,
	},
	{
		ID:        "r15",
		Title:     "Fabric league table (extension)",
		Summary:   "every kernel on all six fabrics, execution-driven",
		CostClass: CostHeavy,
		Needs:     []Need{NeedElectricalTruth, NeedOpticalTruth, NeedHybridTruth},
		Run:       R15League,
	},
	{
		ID:        "r16",
		Title:     "Seed sensitivity of methodology accuracy (extension)",
		Summary:   "accuracy mean ± 95% CI across independent seeds with compute jitter",
		CostClass: CostHeavy,
		Needs:     nil,
		Run:       R16Seeds,
	},
	{
		ID:        "r17",
		Title:     "Memory-bound traffic and the optical advantage (extension)",
		Summary:   "optical:electrical ratio in cache-resident vs memory-bound regimes",
		CostClass: CostMedium,
		Needs:     []Need{NeedElectricalTruth, NeedOpticalTruth},
		Run:       R17Memory,
	},
	{
		ID:        "r18",
		Title:     "Fault injection: degraded throughput and self-correction accuracy (extension)",
		Summary:   "truth slowdown and replay accuracy under the fault presets, with event counters",
		CostClass: CostMedium,
		Needs:     []Need{NeedIdealCapture, NeedOpticalTruth, NeedHybridTruth},
		Run:       R18Faults,
	},
	{
		ID:        "r19",
		Title:     "Analytical fast path: seeding savings and screening error (extension)",
		Summary:   "self-correction rounds and wall clock under analytic vs zero-load seeding, plus closed-form error bands",
		CostClass: CostMedium,
		Needs:     []Need{NeedIdealCapture},
		Run:       R19Seeding,
	},
	{
		ID:        "r20",
		Title:     "Design-space sweep: Pareto front over latency, throughput and power (extension)",
		Summary:   "fabric x radix x WDM x faults x kernel grid through the job pipeline, analytically prefiltered, reduced to Pareto fronts",
		CostClass: CostHeavy,
		Needs:     []Need{NeedIdealCapture},
		Run:       R20DesignSpace,
	},
}

// Registry returns the experiment descriptors in canonical report order.
// The returned slice is a copy; descriptors themselves are shared.
func Registry() []Descriptor {
	return append([]Descriptor(nil), registry...)
}

// Lookup finds an experiment descriptor by id.
func Lookup(id string) (Descriptor, bool) {
	for _, d := range registry {
		if d.ID == id {
			return d, true
		}
	}
	return Descriptor{}, false
}

// Names lists the experiment identifiers in canonical order.
func Names() []string {
	names := make([]string, len(registry))
	for i, d := range registry {
		names[i] = d.ID
	}
	return names
}

// Known reports whether id identifies a registered experiment.
func Known(id string) bool {
	_, ok := Lookup(id)
	return ok
}

// ByName runs one experiment by its identifier.
func ByName(id string, o Options) (*metrics.Table, error) {
	d, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
	}
	return runDescriptor(d, o)
}

// runDescriptor runs one experiment, reporting start/finish to the progress
// observer when one is configured.
func runDescriptor(d Descriptor, o Options) (*metrics.Table, error) {
	if o.Progress == nil {
		return d.Run(o)
	}
	o.Progress.Event(onocsim.ProgressEvent{
		Kind: onocsim.ProgressExperimentStart, Experiment: d.ID, Title: d.Title,
	})
	start := time.Now()
	t, err := d.Run(o)
	o.Progress.Event(onocsim.ProgressEvent{
		Kind: onocsim.ProgressExperimentDone, Experiment: d.ID, Err: err, Elapsed: time.Since(start),
	})
	return t, err
}

// All runs every registered experiment and returns the tables in canonical
// registry order. Sequentially by default; with o.Parallel the experiments
// fan out concurrently — actual simulation concurrency stays bounded by the
// library's simulation-slot semaphore. Either way, a Session is created for
// the run when the caller supplied none, so the shared simulations each
// experiment declares in Needs are computed once and reused (tables are
// byte-identical with or without the session, except that cached wall-clock
// cells report the one computation that actually ran).
func All(o Options) ([]*metrics.Table, error) {
	if o.Session == nil {
		o.Session = onocsim.NewSession("")
		if o.Progress != nil {
			o.Session.SetProgress(o.Progress)
		}
	}
	if o.Parallel {
		return allParallel(o)
	}
	out := make([]*metrics.Table, 0, len(registry))
	for _, d := range registry {
		t, err := runDescriptor(d, o)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", d.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// scheduleOrder returns registry indices in launch order for the parallel
// scheduler: experiments whose Needs are shared by the most other
// experiments launch first (ties broken heavy-first, then registry order).
// Launching the producers of widely shared simulations early means those
// results settle in the cache soonest, so later experiments read settled
// entries instead of piling up as single-flight waiters. Results are
// byte-identical for any order; only scheduling quality changes.
func scheduleOrder() []int {
	shared := map[Need]int{}
	for _, d := range registry {
		for _, n := range d.Needs {
			shared[n]++
		}
	}
	costRank := map[CostClass]int{CostHeavy: 2, CostMedium: 1, CostLight: 0}
	score := make([]int, len(registry))
	for i, d := range registry {
		for _, n := range d.Needs {
			score[i] += shared[n] - 1
		}
	}
	order := make([]int, len(registry))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if score[ia] != score[ib] {
			return score[ia] > score[ib]
		}
		return costRank[registry[ia].CostClass] > costRank[registry[ib].CostClass]
	})
	return order
}

// allParallel is the parallel experiment scheduler: every experiment runs on
// its own goroutine, launched in Needs-aware order (see scheduleOrder), and
// tables are collected in canonical registry order. The per-experiment
// goroutines are cheap coordinators — all heavy work happens in the leaf
// simulation operations, which both bound concurrency (each holds one
// process-wide simulation slot for its timed region) and deduplicate
// (concurrent requests for one result single-flight through the session).
// The first error wins, in canonical experiment order so failures are
// deterministic.
func allParallel(o Options) ([]*metrics.Table, error) {
	tables := make([]*metrics.Table, len(registry))
	errs := make([]error, len(registry))
	var wg sync.WaitGroup
	for _, i := range scheduleOrder() {
		i := i
		d := registry[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tables[i], errs[i] = runDescriptor(d, o)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", registry[i].ID, err)
		}
	}
	return tables, nil
}
