package experiments

import (
	"bytes"
	"regexp"
	"testing"

	"onocsim"
	"onocsim/internal/metrics"
)

// wallClockCell matches decimal numbers: every wall-clock-derived cell (ms
// timings and their ratios) renders with a fractional part, while the
// deterministic simulation outputs in the tables are integers (cycles,
// messages, mW) or fixed-precision values derived from them. Masking all
// decimals is conservative — it also hides some deterministic cells — but
// leaves every integer cell compared exactly.
var wallClockCell = regexp.MustCompile(`[0-9]+\.[0-9]+x?`)

// renderMasked renders tables as CSV with wall-clock cells masked.
func renderMasked(t *testing.T, tables []*metrics.Table) string {
	t.Helper()
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte('\n')
	}
	return wallClockCell.ReplaceAllString(buf.String(), "#")
}

// TestParallelCachedOutputMatchesSequential is the byte-identity guarantee
// of the memoized scheduler: apart from wall-clock cells (nondeterministic
// even between two sequential runs), the parallel cached report must equal
// the sequential uncached one — cold through the disk layer, and again warm
// from it.
func TestParallelCachedOutputMatchesSequential(t *testing.T) {
	sequential, err := All(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	want := renderMasked(t, sequential)

	dir := t.TempDir()
	for _, mode := range []string{"cold", "warm"} {
		opts := quickOpts
		opts.Parallel = true
		opts.Session = onocsim.NewSession(dir)
		tables, err := All(opts)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		got := renderMasked(t, tables)
		if got != want {
			t.Fatalf("%s parallel cached output diverges from sequential uncached output:\n%s",
				mode, firstDiff(want, got))
		}
		st := opts.Session.CacheStats()
		switch mode {
		case "cold":
			if st.Misses == 0 || st.Hits+st.Waits == 0 {
				t.Fatalf("cold stats show no dedup: %+v", st)
			}
			if st.DiskHits != 0 {
				t.Fatalf("cold run claims disk hits: %+v", st)
			}
		case "warm":
			if st.DiskHits == 0 {
				t.Fatalf("warm run never touched the disk layer: %+v", st)
			}
		}
	}
}

// firstDiff locates the first line where two renderings diverge.
func firstDiff(want, got string) string {
	w, g := bytes.Split([]byte(want), []byte("\n")), bytes.Split([]byte(got), []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			return "line " + string(rune('0'+i%10)) + ":\n want: " + string(w[i]) + "\n  got: " + string(g[i])
		}
	}
	return "length mismatch"
}
