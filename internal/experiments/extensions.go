package experiments

import (
	"fmt"

	"onocsim"
	"onocsim/internal/metrics"
	"onocsim/internal/workload"
)

// The experiments in this file go beyond the reconstructed paper evaluation:
// they exercise the design-space and robustness questions the paper's
// methodology enables but (as far as the abstract shows) did not report.
// DESIGN.md lists them as extensions.

// R9Architectures compares the two optical crossbar organizations — the
// token-arbitrated MWSR (Corona-class) and the broadcast SWMR
// (Firefly-class) — on application completion time and power, the classic
// arbitration-latency-versus-static-power trade-off.
func R9Architectures(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R9 (extension) — MWSR vs SWMR optical crossbar",
		"kernel", "mwsr makespan", "swmr makespan", "swmr speedup",
		"mwsr power (mW)", "swmr power (mW)")
	for _, k := range workload.KernelNames() {
		cfg := kernelConfig(o, k)
		cfg.Optical.Architecture = "mwsr"
		mwsr, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		cfg.Optical.Architecture = "swmr"
		swmr, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		t.AddCells(
			metrics.String(k),
			cycles(mwsr.Makespan),
			cycles(swmr.Makespan),
			metrics.Ratio(float64(mwsr.Makespan)/float64(swmr.Makespan), 2),
			metrics.Float(mwsr.Power.TotalMW(), 0, "mW"),
			metrics.Float(swmr.Power.TotalMW(), 0, "mW"),
		)
	}
	t.Note("SWMR removes token-arbitration latency but pays a quadratic receiver-ring tuning budget")
	return t, nil
}

// R10CaptureFabric measures how sensitive the Self-Correction Trace Model is
// to the fabric the trace was captured on: the method's promise is that a
// cheap reference capture suffices.
func R10CaptureFabric(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R10 (extension) — SCTM accuracy vs capture fabric (target: optical)",
		"kernel", "capture=ideal", "capture=electrical", "capture=optical", "naive (ideal capture)")
	kernels := workload.KernelNames()
	if o.Quick {
		kernels = kernels[:2]
	}
	for _, k := range kernels {
		cfg := kernelConfig(o, k)
		truth, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		row := []metrics.Cell{metrics.String(k)}
		var naiveIdeal float64
		for i, capOn := range []onocsim.NetworkKind{onocsim.IdealNet, onocsim.Electrical, onocsim.Optical} {
			tr, _, err := o.Session.CaptureTrace(cfg, capOn)
			if err != nil {
				return nil, err
			}
			res, _, err := o.Session.RunSelfCorrection(cfg, tr, onocsim.Optical)
			if err != nil {
				return nil, err
			}
			row = append(row, metrics.Percent(metrics.RelErr(float64(res.Final.Makespan), float64(truth.Makespan))))
			if i == 0 {
				nv, _, err := o.Session.RunNaiveReplay(cfg, tr, onocsim.Optical)
				if err != nil {
					return nil, err
				}
				naiveIdeal = metrics.RelErr(float64(nv.Makespan), float64(truth.Makespan))
			}
		}
		row = append(row, metrics.Percent(naiveIdeal))
		t.AddCells(row...)
	}
	t.Note("capture=optical is self-capture: the dependency replay should then be nearly exact")
	return t, nil
}

// R12Hybrid evaluates the path-adaptive opto-electronic fabric (the
// direction the paper's authors took next, ISPA 2013): kernel completion
// time versus the distance threshold that splits traffic between the
// electrical mesh and the optical crossbar.
func R12Hybrid(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R12 (extension) — path-adaptive hybrid NoC: makespan vs optical-distance threshold",
		"kernel", "mesh only", "optical only", "hybrid t=2", "hybrid t=4", "hybrid t=6", "best")
	kernels := workload.KernelNames()
	if o.Quick {
		kernels = kernels[:2]
	}
	for _, k := range kernels {
		cfg := kernelConfig(o, k)
		mesh, err := o.Session.RunExecutionDriven(cfg, onocsim.Electrical)
		if err != nil {
			return nil, err
		}
		opt, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		best := "mesh"
		bestMk := mesh.Makespan
		if opt.Makespan < bestMk {
			best, bestMk = "optical", opt.Makespan
		}
		row := []metrics.Cell{metrics.String(k), cycles(mesh.Makespan), cycles(opt.Makespan)}
		for _, th := range []int{2, 4, 6} {
			c := cfg
			c.Hybrid.Threshold = th
			h, err := o.Session.RunExecutionDriven(c, onocsim.Hybrid)
			if err != nil {
				return nil, err
			}
			row = append(row, cycles(h.Makespan))
			if h.Makespan < bestMk {
				best, bestMk = fmt.Sprintf("hybrid t=%d", th), h.Makespan
			}
		}
		row = append(row, metrics.String(best))
		t.AddCells(row...)
	}
	t.Note("hybrid routes hops < threshold over the mesh and the rest over the crossbar")
	return t, nil
}

// R11Damping sweeps the correction loop's damping factor: rounds to
// convergence and final error. It ablates the loop-stability design choice
// DESIGN.md calls out.
func R11Damping(o Options) (*metrics.Table, error) {
	t := metrics.NewTable(
		"R11 (extension) — correction-loop damping sweep (stencil kernel)",
		"damping", "rounds", "converged", "makespan est", "err vs truth")
	cfg := kernelConfig(o, "stencil")
	tr, _, err := o.Session.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		return nil, err
	}
	truth, err := o.Session.RunExecutionDriven(cfg, onocsim.Optical)
	if err != nil {
		return nil, err
	}
	dampings := []float64{0, 0.25, 0.5, 0.75}
	for _, d := range dampings {
		c := cfg
		c.SCTM.Damping = d
		c.SCTM.MaxIterations = 15
		res, _, err := o.Session.RunSelfCorrection(c, tr, onocsim.Optical)
		if err != nil {
			return nil, err
		}
		t.AddCells(
			metrics.Float(d, 2, ""),
			metrics.Int(int64(len(res.Iterations)), "rounds"),
			metrics.Bool(res.Converged),
			cycles(res.Final.Makespan),
			metrics.Percent(metrics.RelErr(float64(res.Final.Makespan), float64(truth.Makespan))),
		)
	}
	return t, nil
}
