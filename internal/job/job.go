// Package job defines the one typed request shape every front end routes
// through. Before it existed the same triple — an operation, a validated
// config, a fabric kind — was re-expressed independently by the onocsim CLI's
// mode switch, the onocsimd service's request decoding and admission pricing,
// and the batch consumers that want to enqueue hundreds of runs at once. A
// Job names that triple once; a Runner executes it through a shared Session
// (memoization, single-flight dedup, disk layer) and returns both the
// rendered table the front ends print and the typed result values batch
// consumers (the design-space sweep) aggregate.
//
// The package deliberately does not import internal/experiments: experiment
// jobs carry their registry id and cost class as data, and the caller that
// owns the registry (the service) injects the dispatch function. That keeps
// the dependency arrow pointing one way — experiments may build on jobs (R20
// runs a sweep of them) without the pipeline depending on the registry.
package job

import (
	"context"
	"errors"
	"fmt"
	"time"

	"onocsim"
	"onocsim/internal/metrics"
	"onocsim/internal/report"
)

// Op names one pipeline operation.
type Op string

const (
	// OpExec is an execution-driven ground-truth run.
	OpExec Op = "exec"
	// OpStudy is the full methodology comparison.
	OpStudy Op = "study"
	// OpCorrect captures the config's kernel trace (or streams TracePath)
	// and runs the self-correction loop on the target fabric.
	OpCorrect Op = "correct"
	// OpEstimate prices the config's kernel trace on the target fabric with
	// the closed-form contention model.
	OpEstimate Op = "estimate"
	// OpExperiment runs one registry experiment (Job.Experiment names it);
	// dispatch is injected via Runner.Experiment.
	OpExperiment Op = "experiment"
)

// ParseOp validates an operation name from the wire.
func ParseOp(s string) (Op, error) {
	switch op := Op(s); op {
	case OpExec, OpStudy, OpCorrect, OpEstimate, OpExperiment:
		return op, nil
	default:
		return "", fmt.Errorf("job: unknown op %q (want exec, study, correct, estimate or experiment)", s)
	}
}

// Job is one typed simulation request: the single shape CLI flags, service
// request bodies and sweep grid arms all reduce to.
type Job struct {
	// Op selects the operation.
	Op Op
	// Config is the full validated configuration. Unused for OpExperiment.
	Config onocsim.Config
	// Kind is the target fabric. Unused for OpExperiment.
	Kind onocsim.NetworkKind
	// Experiment is the registry id ("r1") for OpExperiment.
	Experiment string
	// Cost is the experiment's registry cost class ("light", "medium",
	// "heavy") for admission pricing; empty prices as medium. Simulation
	// ops ignore it — their op implies the class.
	Cost string
	// TracePath optionally replaces the config's captured kernel trace with
	// a stored binary trace file, streamed out-of-core and keyed by content
	// digest (OpCorrect only). This is how the service runs big tenant
	// traces without materializing them.
	TracePath string
}

// Validate checks the job is executable before any admission or simulation
// is paid for.
func (j Job) Validate() error {
	switch j.Op {
	case OpExperiment:
		if j.Experiment == "" {
			return fmt.Errorf("job: experiment op without an experiment id")
		}
		return nil
	case OpExec, OpStudy, OpCorrect, OpEstimate:
		if j.TracePath != "" && j.Op != OpCorrect {
			return fmt.Errorf("job: trace path is only supported by op correct (got %q)", j.Op)
		}
		return onocsim.ValidateNetworkKind(j.Config, j.Kind)
	default:
		return fmt.Errorf("job: unknown op %q", j.Op)
	}
}

// Admission prices the job for a SlotScheduler: the class and cost units one
// admission Acquire should claim. The weights are deliberately coarse — they
// keep a burst of heavy sweeps from monopolizing a budget, not model cost
// precisely. Experiment jobs are priced by their registry cost class.
func (j Job) Admission() (onocsim.SlotClass, int) {
	if j.Op == OpExperiment {
		return AdmissionForCost(j.Cost)
	}
	switch j.Op {
	case OpStudy:
		return onocsim.SlotHeavy, 4
	case OpEstimate:
		return onocsim.SlotLight, 1
	default: // exec, correct
		return onocsim.SlotMedium, 2
	}
}

// AdmissionForCost maps a registry cost class name to admission pricing.
func AdmissionForCost(cost string) (onocsim.SlotClass, int) {
	switch cost {
	case "light":
		return onocsim.SlotLight, 1
	case "heavy":
		return onocsim.SlotHeavy, 4
	default:
		return onocsim.SlotMedium, 2
	}
}

// Fingerprint returns the job config's canonical fingerprint — the identity
// the service reports in result envelopes. Empty for experiment jobs, whose
// identity is the registry id.
func (j Job) Fingerprint() (string, error) {
	if j.Op == OpExperiment {
		return "", nil
	}
	return j.Config.Fingerprint()
}

// Result is one executed job: the rendered table both front ends print,
// plus the typed values batch consumers aggregate without re-parsing cells.
// Exactly one of the payload pointers is set, matching the op.
type Result struct {
	// Table is the operation's report table (internal/report builders, so
	// CLI and daemon renderings stay byte-identical).
	Table *metrics.Table
	// Status is "ok", or "parked" for a correction that stopped at a round
	// boundary and returned its partial trajectory.
	Status string
	// Elapsed is the host time the job took end to end (including cache
	// hits, which make it near zero).
	Elapsed time.Duration

	// Truth is set for OpExec.
	Truth *onocsim.GroundTruth
	// Study is set for OpStudy.
	Study *onocsim.Study
	// Correction is set for OpCorrect.
	Correction *onocsim.CorrectionResult
	// Estimate is set for OpEstimate.
	Estimate *onocsim.AnalyticEstimate

	// TraceEvents and TraceBytes describe the captured trace feeding
	// OpCorrect/OpEstimate (zero for streamed TracePath jobs, whose traces
	// are never materialized). TraceBytes is the payload total the sweep
	// turns into a throughput objective.
	TraceEvents int
	TraceBytes  int64
}

// ExperimentFunc dispatches one OpExperiment job; the service wires it to
// the experiment registry.
type ExperimentFunc func(ctx context.Context, id string) (*metrics.Table, error)

// Runner executes jobs through one shared session.
type Runner struct {
	// Session memoizes and single-flights simulations. Session methods are
	// nil-safe, so a nil session runs every job uncached — the same
	// degradation the rest of the library offers. OpExperiment only needs
	// Experiment.
	Session *onocsim.Session
	// Experiment runs OpExperiment jobs; nil rejects them.
	Experiment ExperimentFunc
}

// Run executes one job. Deduplicated flights self-heal: when the job is
// deduplicated onto another caller's in-flight computation and that caller
// disconnects (killing the flight with a cancellation or a park), the
// still-live job retries the — now vacant — flight itself, up to twice; a
// retried correction resumes from the parked run's stashed state rather
// than from scratch. A park caused by this job's own lifecycle (context
// ended) is terminal and returns the partial result with status "parked".
func (r *Runner) Run(ctx context.Context, j Job) (Result, error) {
	if err := j.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	for attempt := 0; ; attempt++ {
		res, err := r.runOnce(ctx, j)
		if err == nil {
			res.Status = "ok"
			res.Elapsed = time.Since(start)
			return res, nil
		}
		if errors.Is(err, onocsim.ErrParked) && res.Table != nil {
			// This job's own computation parked and carried its partial
			// trajectory out; report it rather than retrying a dying run.
			res.Status = "parked"
			res.Elapsed = time.Since(start)
			return res, nil
		}
		retryable := errors.Is(err, context.Canceled) || errors.Is(err, onocsim.ErrParked)
		if !retryable || attempt >= 2 || ctx.Err() != nil {
			return Result{}, err
		}
	}
}

// runOnce dispatches one attempt. For a parked correction with a non-empty
// trajectory it returns the rendered partial table alongside the error, so
// Run can distinguish "my own run parked" from "the flight I waited on died".
func (r *Runner) runOnce(ctx context.Context, j Job) (Result, error) {
	switch j.Op {
	case OpExec:
		res, err := r.Session.RunExecutionDrivenContext(ctx, j.Config, j.Kind)
		if err != nil {
			return Result{}, err
		}
		return Result{Table: report.Exec(j.Config, j.Kind, res), Truth: &res}, nil

	case OpStudy:
		st, err := r.Session.RunStudyContext(ctx, j.Config, j.Kind)
		if err != nil {
			return Result{}, err
		}
		return Result{Table: report.Study(j.Config, j.Kind, st), Study: st}, nil

	case OpCorrect:
		if j.TracePath != "" {
			src, err := onocsim.OpenTraceFile(j.TracePath)
			if err != nil {
				return Result{}, err
			}
			res, wall, err := r.Session.RunSelfCorrectionStreamContext(ctx, j.Config, src, j.Kind)
			if err != nil {
				return Result{}, err
			}
			return Result{Table: report.Correction(j.Config, j.Kind, res, wall, false), Correction: &res}, nil
		}
		tr, _, err := r.Session.CaptureTraceContext(ctx, j.Config, onocsim.IdealNet)
		if err != nil {
			return Result{}, err
		}
		res, wall, err := r.Session.RunSelfCorrectionContext(ctx, j.Config, tr, j.Kind)
		if err != nil {
			if errors.Is(err, onocsim.ErrParked) && len(res.Iterations) > 0 {
				// The partial trajectory came back with the park: render it.
				out := Result{Table: report.Correction(j.Config, j.Kind, res, wall, true), Correction: &res}
				out.TraceEvents, out.TraceBytes = traceSize(tr)
				return out, err
			}
			return Result{}, err
		}
		out := Result{Table: report.Correction(j.Config, j.Kind, res, wall, false), Correction: &res}
		out.TraceEvents, out.TraceBytes = traceSize(tr)
		return out, nil

	case OpEstimate:
		tr, _, err := r.Session.CaptureTraceContext(ctx, j.Config, onocsim.IdealNet)
		if err != nil {
			return Result{}, err
		}
		res, wall, err := r.Session.Estimate(j.Config, tr, j.Kind)
		if err != nil {
			return Result{}, err
		}
		out := Result{Table: report.Estimate(j.Config, j.Kind, res, wall), Estimate: &res}
		out.TraceEvents, out.TraceBytes = traceSize(tr)
		return out, nil

	case OpExperiment:
		if r.Experiment == nil {
			return Result{}, fmt.Errorf("job: no experiment dispatcher installed")
		}
		t, err := r.Experiment(ctx, j.Experiment)
		if err != nil {
			return Result{}, err
		}
		return Result{Table: t}, nil

	default:
		return Result{}, fmt.Errorf("job: unknown op %q", j.Op)
	}
}

// traceSize sums a materialized trace: event count and payload bytes.
func traceSize(tr *onocsim.Trace) (int, int64) {
	var bytes int64
	for i := range tr.Events {
		bytes += int64(tr.Events[i].Bytes)
	}
	return len(tr.Events), bytes
}
