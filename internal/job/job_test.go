package job

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"onocsim"
	"onocsim/internal/metrics"
)

func TestParseOp(t *testing.T) {
	for _, s := range []string{"exec", "study", "correct", "estimate", "experiment"} {
		op, err := ParseOp(s)
		if err != nil || string(op) != s {
			t.Fatalf("ParseOp(%q) = %q, %v", s, op, err)
		}
	}
	if _, err := ParseOp("teleport"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestAdmissionPricing(t *testing.T) {
	cases := []struct {
		job   Job
		class onocsim.SlotClass
		units int
	}{
		{Job{Op: OpStudy}, onocsim.SlotHeavy, 4},
		{Job{Op: OpEstimate}, onocsim.SlotLight, 1},
		{Job{Op: OpExec}, onocsim.SlotMedium, 2},
		{Job{Op: OpCorrect}, onocsim.SlotMedium, 2},
		{Job{Op: OpExperiment, Cost: "light"}, onocsim.SlotLight, 1},
		{Job{Op: OpExperiment, Cost: "heavy"}, onocsim.SlotHeavy, 4},
		{Job{Op: OpExperiment, Cost: "medium"}, onocsim.SlotMedium, 2},
		{Job{Op: OpExperiment}, onocsim.SlotMedium, 2},
	}
	for _, tc := range cases {
		class, units := tc.job.Admission()
		if class != tc.class || units != tc.units {
			t.Errorf("%s/%s: admission %v/%d, want %v/%d",
				tc.job.Op, tc.job.Cost, class, units, tc.class, tc.units)
		}
	}
}

func TestValidate(t *testing.T) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	ok := Job{Op: OpExec, Config: cfg, Kind: onocsim.Optical}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name string
		job  Job
		want string
	}{
		{"experiment without id", Job{Op: OpExperiment}, "experiment id"},
		{"trace path on exec", Job{Op: OpExec, Config: cfg, Kind: onocsim.Optical, TracePath: "t.bin"}, "trace path"},
		{"unknown op", Job{Op: "teleport"}, "unknown op"},
	}
	for _, tc := range cases {
		err := tc.job.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestFingerprint(t *testing.T) {
	cfg := onocsim.DefaultConfig()
	fp, err := (Job{Op: OpExec, Config: cfg, Kind: onocsim.Optical}).Fingerprint()
	if err != nil || fp == "" {
		t.Fatalf("Fingerprint() = %q, %v", fp, err)
	}
	// Experiment identity is the registry id, not a config digest.
	fp, err = (Job{Op: OpExperiment, Experiment: "r1"}).Fingerprint()
	if err != nil || fp != "" {
		t.Fatalf("experiment fingerprint = %q, %v, want empty", fp, err)
	}
}

// smallJob is a fast valid simulation job on the optical fabric.
func smallJob(op Op) Job {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	return Job{Op: op, Config: cfg, Kind: onocsim.Optical}
}

// Every simulation op runs end to end through a shared session, returns a
// rendered table, and sets exactly the payload pointer its op promises.
func TestRunnerOps(t *testing.T) {
	r := &Runner{Session: onocsim.NewSession("")}
	for _, op := range []Op{OpExec, OpStudy, OpCorrect, OpEstimate} {
		res, err := r.Run(context.Background(), smallJob(op))
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if res.Status != "ok" || res.Table == nil {
			t.Fatalf("%s: status %q, table %v", op, res.Status, res.Table)
		}
		set := 0
		for _, p := range []bool{res.Truth != nil, res.Study != nil, res.Correction != nil, res.Estimate != nil} {
			if p {
				set++
			}
		}
		if set != 1 {
			t.Fatalf("%s: %d payload pointers set, want exactly 1", op, set)
		}
		if op == OpCorrect || op == OpEstimate {
			if res.TraceEvents == 0 || res.TraceBytes == 0 {
				t.Fatalf("%s: trace accounting empty: %d events, %d bytes", op, res.TraceEvents, res.TraceBytes)
			}
		}
	}
}

// A sessionless runner degrades to uncached execution — the same nil-safety
// the Session methods themselves offer — while an experiment job without an
// installed dispatcher is a wiring error.
func TestRunnerNilWiring(t *testing.T) {
	r := &Runner{}
	res, err := r.Run(context.Background(), smallJob(OpExec))
	if err != nil || res.Truth == nil {
		t.Fatalf("sessionless simulation: %+v, %v", res, err)
	}
	if _, err := r.Run(context.Background(), Job{Op: OpExperiment, Experiment: "r1"}); err == nil {
		t.Fatal("experiment without dispatcher accepted")
	}
}

func TestRunnerExperimentDispatch(t *testing.T) {
	want := metrics.NewTable("stub", "col")
	r := &Runner{Experiment: func(_ context.Context, id string) (*metrics.Table, error) {
		if id != "r1" {
			return nil, fmt.Errorf("unexpected id %q", id)
		}
		return want, nil
	}}
	res, err := r.Run(context.Background(), Job{Op: OpExperiment, Experiment: "r1", Cost: "light"})
	if err != nil || res.Table != want {
		t.Fatalf("dispatch: table %v, err %v", res.Table, err)
	}
}

// A job whose own context dies mid-correction reports the parked partial
// trajectory instead of erroring or retrying forever.
func TestRunnerReportsOwnPark(t *testing.T) {
	j := smallJob(OpCorrect)
	j.Config.SCTM.MaxIterations = 50
	j.Config.SCTM.ToleranceCycles = 0
	j.Config.SCTM.MakespanTolerance = 0
	j.Config.SCTM.Damping = 0.9
	j.Config.SCTM.Seed = "fixed"
	j.Config.SCTM.InitialLatencyCycles = 5000

	r := &Runner{Session: onocsim.NewSession("")}
	ctx := &pollCtx{Context: context.Background(), remaining: 10}
	res, err := r.Run(ctx, j)
	if err != nil {
		t.Fatalf("parked run surfaced an error: %v", err)
	}
	if res.Status != "parked" || res.Table == nil || res.Correction == nil {
		t.Fatalf("park not reported: status %q, table %v, correction %v", res.Status, res.Table, res.Correction)
	}
	if res.Correction.Converged || len(res.Correction.Iterations) == 0 {
		t.Fatalf("parked trajectory implausible: %+v", res.Correction)
	}
	// A plain cancellation before any round yields the error, not a report.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(dead, j); !errors.Is(err, context.Canceled) && !errors.Is(err, onocsim.ErrParked) {
		t.Fatalf("cancelled run returned %v", err)
	}
}

// pollCtx reports Canceled after a fixed number of Err polls, landing the
// park mid-loop (the correction loop polls once per round boundary).
type pollCtx struct {
	context.Context
	remaining int
}

func (c *pollCtx) Err() error {
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.Canceled
}
