// Package workload provides the traffic that drives the simulators: classic
// synthetic patterns for open-loop network characterization (experiment R4)
// and four parallel kernels with realistic dependency structure — the
// stand-ins for the paper's "real applications" (see DESIGN.md §5).
package workload

import (
	"fmt"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// Pattern maps a source node to a destination for synthetic traffic.
type Pattern func(src, nodes int, rng *sim.RNG) int

// PatternByName returns a named synthetic pattern. The set matches the
// canonical NoC evaluation suite: uniform random, transpose, hotspot,
// bit-complement, nearest neighbor, tornado.
func PatternByName(name string) (Pattern, error) {
	switch name {
	case "uniform":
		return func(src, nodes int, rng *sim.RNG) int {
			for {
				d := rng.Intn(nodes)
				if d != src {
					return d
				}
			}
		}, nil
	case "transpose":
		return func(src, nodes int, rng *sim.RNG) int {
			w := meshWidth(nodes)
			x, y := src%w, src/w
			return x*w + y
		}, nil
	case "hotspot":
		return func(src, nodes int, rng *sim.RNG) int {
			// 20% of traffic to the center node, rest uniform.
			if rng.Bernoulli(0.2) {
				return nodes / 2
			}
			for {
				d := rng.Intn(nodes)
				if d != src {
					return d
				}
			}
		}, nil
	case "bitcomplement":
		return func(src, nodes int, rng *sim.RNG) int {
			return (nodes - 1) - src
		}, nil
	case "neighbor":
		return func(src, nodes int, rng *sim.RNG) int {
			w := meshWidth(nodes)
			x, y := src%w, src/w
			return ((x + 1) % w) + y*w
		}, nil
	case "tornado":
		return func(src, nodes int, rng *sim.RNG) int {
			w := meshWidth(nodes)
			x, y := src%w, src/w
			return ((x + w/2) % w) + y*w
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown pattern %q", name)
	}
}

func meshWidth(nodes int) int {
	w := 1
	for w*w < nodes {
		w++
	}
	return w
}

// SyntheticResult reports an open-loop traffic run.
type SyntheticResult struct {
	// Offered is the configured injection rate in flits/node/cycle.
	Offered float64
	// InjectedPackets and DeliveredPackets count packets.
	InjectedPackets  uint64
	DeliveredPackets uint64
	// MeanLatency and P99Latency are in cycles.
	MeanLatency float64
	P99Latency  float64
	// Throughput is accepted flits/node/cycle over the measured window.
	Throughput float64
	// Cycles is the total simulated length.
	Cycles sim.Tick
	// Saturated is set when the drain phase hit its bound, meaning the
	// network could not accept the offered load.
	Saturated bool
	// Faults counts injected-fault events absorbed during the run.
	Faults noc.FaultCounts
}

// RunSynthetic drives a fabric open-loop: every node injects packets of
// cfg.PacketBytes under the given pattern at cfg.InjectionRate (flits per
// node per cycle, with a 16-byte reference flit), for cfg.Packets packets
// per node, then drains. Determinism follows from the seeded RNG.
func RunSynthetic(net noc.Network, cfg config.Workload, flitBytes int, seed uint64) (SyntheticResult, error) {
	pat, err := PatternByName(cfg.Pattern)
	if err != nil {
		return SyntheticResult{}, err
	}
	if flitBytes <= 0 {
		flitBytes = 16
	}
	nodes := net.Nodes()
	flitsPerPkt := (cfg.PacketBytes + flitBytes - 1) / flitBytes
	if flitsPerPkt < 1 {
		flitsPerPkt = 1
	}
	// Per-cycle packet start probability that yields the offered flit rate.
	pktProb := cfg.InjectionRate / float64(flitsPerPkt)
	if pktProb > 1 {
		pktProb = 1
	}
	rngs := make([]*sim.RNG, nodes)
	for i := range rngs {
		rngs[i] = sim.NewStream(seed, fmt.Sprintf("synthetic-%d", i))
	}
	// Open-loop runs only need the fabric's aggregate statistics, so the
	// delivery callback exists purely to recycle message allocations.
	var pool noc.MsgPool
	net.SetDeliver(func(m *noc.Message) { pool.Put(m) })

	var id uint64
	remaining := make([]int, nodes)
	for i := range remaining {
		remaining[i] = cfg.Packets
	}
	left := nodes * cfg.Packets
	res := SyntheticResult{Offered: cfg.InjectionRate}

	// Deterministic patterns can map a node to itself (the transpose
	// diagonal); such draws consume the node's budget without producing
	// fabric traffic, otherwise the injection loop could never finish.
	injectBound := sim.Tick(100_000_000)
	for left > 0 {
		if net.Now() > injectBound {
			return SyntheticResult{}, fmt.Errorf("workload: injection did not finish within %d cycles (rate %g too low for %d packets?)",
				injectBound, cfg.InjectionRate, cfg.Packets)
		}
		net.Tick()
		for n := 0; n < nodes; n++ {
			if remaining[n] == 0 || !rngs[n].Bernoulli(pktProb) {
				continue
			}
			dst := pat(n, nodes, rngs[n])
			remaining[n]--
			left--
			if dst == n {
				continue // self-traffic is excluded from open-loop runs
			}
			id++
			m := pool.Get()
			m.ID = id
			m.Src = n
			m.Dst = dst
			m.Bytes = cfg.PacketBytes
			m.Class = noc.ClassRequest
			net.Inject(m)
			res.InjectedPackets++
		}
	}
	// Drain with a generous bound: saturated networks may hold packets
	// for a long time; cap at a large multiple of the injection window.
	// With injection over, cycles before the fabric's next wake-up are
	// provably idle and are fast-forwarded.
	drainBound := net.Now()*20 + 2_000_000
	for net.Busy() && net.Now() < drainBound {
		if wake := net.NextWake(); wake > net.Now()+1 {
			if wake > drainBound {
				wake = drainBound + 1
			}
			net.SkipTo(wake - 1)
			if net.Now() >= drainBound {
				break
			}
		}
		net.Tick()
	}
	res.Saturated = net.Busy()
	st := net.Stats()
	res.DeliveredPackets = st.Delivered
	res.MeanLatency = st.Latency.Mean()
	res.P99Latency = st.Latency.ApproxPercentile(99)
	res.Cycles = net.Now()
	res.Faults = st.Faults
	if res.Cycles > 0 {
		res.Throughput = float64(st.Delivered) * float64(flitsPerPkt) / float64(nodes) / float64(res.Cycles)
	}
	return res, nil
}
