package workload

import (
	"testing"
	"testing/quick"
	"time"

	"onocsim/internal/config"
	"onocsim/internal/cpu"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// timeAfter wraps time.After with a nanosecond argument for readability in
// timeout guards.
func timeAfter(ns int64) <-chan time.Time { return time.After(time.Duration(ns)) }

func TestPatternByNameKnown(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "hotspot", "bitcomplement", "neighbor", "tornado"} {
		if _, err := PatternByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := PatternByName("spiral"); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestPatternsInRange(t *testing.T) {
	rng := sim.NewRNG(5)
	for _, name := range []string{"uniform", "transpose", "hotspot", "bitcomplement", "neighbor", "tornado"} {
		pat, _ := PatternByName(name)
		if err := quick.Check(func(sRaw uint8) bool {
			src := int(sRaw) % 64
			d := pat(src, 64, rng)
			return d >= 0 && d < 64
		}, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s out of range: %v", name, err)
		}
	}
}

func TestDeterministicPatternsArePermutations(t *testing.T) {
	// transpose and bitcomplement are involutions; neighbor and tornado
	// are permutations of the node set.
	rng := sim.NewRNG(5)
	for _, name := range []string{"transpose", "bitcomplement", "neighbor", "tornado"} {
		pat, _ := PatternByName(name)
		seen := map[int]bool{}
		for s := 0; s < 64; s++ {
			d := pat(s, 64, rng)
			if seen[d] {
				t.Errorf("%s maps two sources to %d", name, d)
			}
			seen[d] = true
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := sim.NewRNG(1)
	pat, _ := PatternByName("transpose")
	for s := 0; s < 64; s++ {
		if pat(pat(s, 64, rng), 64, rng) != s {
			t.Fatalf("transpose not an involution at %d", s)
		}
	}
}

func TestUniformAvoidsSelf(t *testing.T) {
	rng := sim.NewRNG(2)
	pat, _ := PatternByName("uniform")
	for i := 0; i < 1000; i++ {
		if pat(7, 16, rng) == 7 {
			t.Fatal("uniform produced self-traffic")
		}
	}
}

func TestRunSyntheticDeliversAll(t *testing.T) {
	cfg := config.Default().Workload
	cfg.Kind = config.WorkloadSynthetic
	cfg.Pattern = "uniform"
	cfg.InjectionRate = 0.1
	cfg.PacketBytes = 64
	cfg.Packets = 30
	net := noc.NewIdeal(16, 20, 16)
	res, err := RunSynthetic(net, cfg, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatal("ideal network saturated at 0.1")
	}
	if res.InjectedPackets != res.DeliveredPackets {
		t.Fatalf("injected %d, delivered %d", res.InjectedPackets, res.DeliveredPackets)
	}
	if res.MeanLatency <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestRunSyntheticDeterministic(t *testing.T) {
	cfg := config.Default().Workload
	cfg.Kind = config.WorkloadSynthetic
	cfg.Pattern = "hotspot"
	cfg.InjectionRate = 0.2
	cfg.PacketBytes = 32
	cfg.Packets = 20
	run := func() SyntheticResult {
		net := noc.NewIdeal(16, 20, 16)
		res, err := RunSynthetic(net, cfg, 16, 11)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic synthetic run:\n%+v\n%+v", a, b)
	}
}

func TestRunSyntheticTransposeDiagonalTerminates(t *testing.T) {
	// Regression: transpose maps diagonal nodes to themselves; their
	// packet budget must still drain or the injection loop never ends.
	cfg := config.Default().Workload
	cfg.Kind = config.WorkloadSynthetic
	cfg.Pattern = "transpose"
	cfg.InjectionRate = 0.2
	cfg.PacketBytes = 64
	cfg.Packets = 10
	net := noc.NewIdeal(16, 20, 16)
	done := make(chan struct{})
	var res SyntheticResult
	var err error
	go func() {
		res, err = RunSynthetic(net, cfg, 16, 3)
		close(done)
	}()
	select {
	case <-done:
	case <-timeAfter(10e9):
		t.Fatal("transpose run did not terminate")
	}
	if err != nil {
		t.Fatal(err)
	}
	// 4 diagonal nodes of the 4×4 mesh inject nothing.
	if res.InjectedPackets != uint64(12*10) {
		t.Fatalf("injected %d, want 120 (diagonal excluded)", res.InjectedPackets)
	}
}

func TestRunSyntheticRejectsBadPattern(t *testing.T) {
	cfg := config.Default().Workload
	cfg.Pattern = "nope"
	if _, err := RunSynthetic(noc.NewIdeal(4, 10, 0), cfg, 16, 1); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func kernelCfg(kernel string, cores int) config.Config {
	cfg := config.Default()
	cfg.System.Cores = cores
	cfg.Workload.Kernel = kernel
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	return cfg
}

func TestGenerateAllKernels(t *testing.T) {
	for _, k := range KernelNames() {
		progs, err := Generate(kernelCfg(k, 16))
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(progs) != 16 {
			t.Fatalf("%s: %d programs", k, len(progs))
		}
		for c, p := range progs {
			if err := p.Validate(); err != nil {
				t.Fatalf("%s core %d: %v", k, c, err)
			}
			if len(p) == 0 {
				t.Fatalf("%s core %d: empty program", k, c)
			}
		}
	}
	if _, err := Generate(func() config.Config {
		c := kernelCfg("stencil", 16)
		c.Workload.Kernel = "nbody"
		return c
	}()); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestKernelsBarrierSequencesMatchAcrossCores(t *testing.T) {
	// SPMD invariant: every core must encounter the same barrier IDs in
	// the same order, or the simulation deadlocks.
	for _, k := range KernelNames() {
		progs, err := Generate(kernelCfg(k, 16))
		if err != nil {
			t.Fatal(err)
		}
		ref := barrierSequence(progs[0])
		if len(ref) == 0 {
			t.Fatalf("%s has no barriers", k)
		}
		for c := 1; c < len(progs); c++ {
			got := barrierSequence(progs[c])
			if len(got) != len(ref) {
				t.Fatalf("%s: core %d has %d barriers, core 0 has %d", k, c, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s: core %d barrier %d is %d, core 0 has %d", k, c, i, got[i], ref[i])
				}
			}
		}
	}
}

func barrierSequence(p cpu.Program) []uint64 {
	var ids []uint64
	for _, op := range p {
		if op.Kind == cpu.OpBarrier {
			ids = append(ids, op.Arg)
		}
	}
	return ids
}

func TestKernelsShareAddresses(t *testing.T) {
	// Communication happens only if cores touch each other's lines: at
	// least one address loaded by some core must be stored by another.
	for _, k := range KernelNames() {
		progs, err := Generate(kernelCfg(k, 16))
		if err != nil {
			t.Fatal(err)
		}
		stores := map[uint64]int{}
		for c, p := range progs {
			for _, op := range p {
				if op.Kind == cpu.OpStore {
					stores[op.Arg] = c
				}
			}
		}
		shared := false
	outer:
		for c, p := range progs {
			for _, op := range p {
				if op.Kind == cpu.OpLoad {
					if owner, ok := stores[op.Arg]; ok && owner != c {
						shared = true
						break outer
					}
				}
			}
		}
		if !shared {
			t.Fatalf("%s: no cross-core sharing — kernel generates no coherence traffic", k)
		}
	}
}

func TestFFTRequiresPowerOfTwo(t *testing.T) {
	cfg := kernelCfg("fft", 144) // square but not a power of two
	if _, err := Generate(cfg); err == nil {
		t.Fatal("fft accepted 144 cores")
	}
}

func TestSortUsesLocks(t *testing.T) {
	progs, err := Generate(kernelCfg("sort", 16))
	if err != nil {
		t.Fatal(err)
	}
	locks := 0
	for _, op := range progs[3] {
		if op.Kind == cpu.OpLock {
			locks++
		}
	}
	if locks != 16 {
		t.Fatalf("sort core should lock every bucket once, got %d", locks)
	}
}

func TestComputeScaleScalesCost(t *testing.T) {
	base := kernelCfg("stencil", 16)
	big := base
	big.Workload.ComputeScale = 10
	pb, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := Generate(big)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(ps []cpu.Program) (tot uint64) {
		for _, p := range ps {
			for _, op := range p {
				if op.Kind == cpu.OpCompute {
					tot += op.Arg
				}
			}
		}
		return
	}
	if sum(pg) < 9*sum(pb) {
		t.Fatalf("compute scale ineffective: %d vs %d", sum(pg), sum(pb))
	}
}

func TestScaleCompute(t *testing.T) {
	if scaleCompute(0.1, 0.1) != 1 {
		t.Fatal("floor to 1 cycle")
	}
	if scaleCompute(100, 2) != 200 {
		t.Fatal("scaling wrong")
	}
}

func TestJitterPerturbsComputeOnly(t *testing.T) {
	base := kernelCfg("stencil", 16)
	jit := base
	jit.Workload.Jitter = 0.2
	pb, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := Generate(jit)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for c := range pb {
		if len(pb[c]) != len(pj[c]) {
			t.Fatal("jitter changed program shape")
		}
		for i := range pb[c] {
			if pb[c][i].Kind != pj[c][i].Kind {
				t.Fatal("jitter changed op kinds")
			}
			if pb[c][i].Kind == cpu.OpCompute {
				if pb[c][i].Arg != pj[c][i].Arg {
					changed = true
				}
			} else if pb[c][i].Arg != pj[c][i].Arg {
				t.Fatal("jitter touched a non-compute op")
			}
		}
	}
	if !changed {
		t.Fatal("jitter had no effect on compute ops")
	}
	// Different seeds must give different jitter.
	jit2 := jit
	jit2.Seed = 777
	pj2, err := Generate(jit2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for c := range pj {
		for i := range pj[c] {
			if pj[c][i].Arg != pj2[c][i].Arg {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seed does not influence jitter")
	}
	// Zero jitter is the identity.
	pz, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	for c := range pb {
		for i := range pb[c] {
			if pb[c][i] != pz[c][i] {
				t.Fatal("zero jitter not reproducible")
			}
		}
	}
}
