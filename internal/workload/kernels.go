package workload

import (
	"fmt"

	"onocsim/internal/config"
	"onocsim/internal/cpu"
	"onocsim/internal/sim"
)

// The kernels below generate per-core cpu.Programs whose communication
// archetypes mirror the SPLASH-2/PARSEC workloads the paper ran:
//
//	fft     — butterfly all-to-all permutation, barrier per stage
//	lu      — pivot one-to-many broadcast through shared lines, two
//	          barriers per elimination step, shrinking parallelism
//	stencil — nearest-neighbor halo exchange + barrier per sweep
//	sort    — lock-protected bucket exchange (sample sort), then barrier
//
// Sharing is expressed entirely through the memory system: a core "sends"
// data by storing lines that other cores later load, which drives the full
// MSI protocol (misses, invalidations, recalls) and yields the causal and
// synchronization dependency chains the Self-Correction Trace Model feeds on.

// lineAddr returns the byte address of global line index li.
func lineAddr(li uint64, lineBytes int) uint64 { return li * uint64(lineBytes) }

// region lays out a per-core array: core c's slice of a region starting at
// base (in lines) with span lines per core.
func region(base uint64, core, span int) uint64 {
	return base + uint64(core)*uint64(span)
}

// scaleCompute applies the configured compute scaling with a floor of one
// cycle.
func scaleCompute(cycles float64, scale float64) int64 {
	v := int64(cycles * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Generate builds the per-core programs for the configured kernel.
func Generate(cfg config.Config) ([]cpu.Program, error) {
	w := cfg.Workload
	var progs []cpu.Program
	var err error
	switch w.Kernel {
	case "fft":
		progs, err = genFFT(cfg)
	case "lu":
		progs, err = genLU(cfg)
	case "stencil":
		progs, err = genStencil(cfg)
	case "sort":
		progs, err = genSort(cfg)
	case "reduce":
		progs, err = genReduce(cfg)
	default:
		return nil, fmt.Errorf("workload: unknown kernel %q", w.Kernel)
	}
	if err != nil {
		return nil, err
	}
	applyJitter(progs, cfg.Seed, w.Jitter)
	return progs, nil
}

// applyJitter perturbs every compute op by a seed-driven factor in
// [1−j, 1+j), modelling input-dependent work. Zero jitter leaves the
// programs untouched, so the default experiments remain bit-reproducible
// across configurations that only differ in seed.
func applyJitter(progs []cpu.Program, seed uint64, j float64) {
	if j <= 0 {
		return
	}
	for c := range progs {
		rng := sim.NewStream(seed, fmt.Sprintf("jitter-core-%d", c))
		for i := range progs[c] {
			if progs[c][i].Kind != cpu.OpCompute {
				continue
			}
			f := 1 + j*(2*rng.Float64()-1)
			v := int64(float64(progs[c][i].Arg) * f)
			if v < 1 {
				v = 1
			}
			progs[c][i].Arg = uint64(v)
		}
	}
}

// genReduce produces an allreduce: a binary reduction tree (each parent
// reads its children's partial blocks after a per-level barrier) followed by
// a broadcast down the same tree — the convergecast/broadcast archetype of
// iterative solvers' dot products. Repeated cfg.Iterations times.
func genReduce(cfg config.Config) ([]cpu.Program, error) {
	P := cfg.System.Cores
	if P&(P-1) != 0 {
		return nil, fmt.Errorf("workload: reduce needs a power-of-two core count, got %d", P)
	}
	span := cfg.Workload.Scale
	iters := cfg.Workload.Iterations
	lb := cfg.System.L1LineBytes
	const base = 5 << 20
	levels := 0
	for 1<<levels < P {
		levels++
	}
	progs := make([]cpu.Program, P)
	for c := 0; c < P; c++ {
		var p cpu.Program
		myBase := region(base, c, span)
		for it := 0; it < iters; it++ {
			// Produce a local partial result.
			p = append(p, cpu.Compute(scaleCompute(float64(span*8), cfg.Workload.ComputeScale)))
			for r := 0; r < span; r++ {
				p = append(p, cpu.Store(lineAddr(myBase+uint64(r), lb)))
			}
			// Reduce up: at level l, cores with the low l+1 bits zero
			// combine their child's block (child = c | 1<<l).
			for l := 0; l < levels; l++ {
				p = append(p, cpu.Barrier(0))
				if c&((1<<(l+1))-1) == 0 {
					child := c | 1<<l
					chBase := region(base, child, span)
					for r := 0; r < span; r++ {
						p = append(p, cpu.Load(lineAddr(chBase+uint64(r), lb)))
					}
					p = append(p, cpu.Compute(scaleCompute(float64(span*4), cfg.Workload.ComputeScale)))
					for r := 0; r < span; r++ {
						p = append(p, cpu.Store(lineAddr(myBase+uint64(r), lb)))
					}
				} else {
					p = append(p, cpu.Compute(scaleCompute(2, cfg.Workload.ComputeScale)))
				}
			}
			// Broadcast down: everyone reads the root's block.
			p = append(p, cpu.Barrier(0))
			rootBase := region(base, 0, span)
			if c != 0 {
				for r := 0; r < span; r++ {
					p = append(p, cpu.Load(lineAddr(rootBase+uint64(r), lb)))
				}
			}
			p = append(p, cpu.Compute(scaleCompute(float64(span*2), cfg.Workload.ComputeScale)))
			p = append(p, cpu.Barrier(0))
		}
		progs[c] = p
	}
	patchBarriers(progs, iters*(levels+2))
	return progs, nil
}

// genStencil produces an iterative 5-point Jacobi sweep: each core owns a
// block of `scale` rows (one line per row), loads boundary rows of its mesh
// neighbors, computes, stores its block, and joins a barrier per sweep.
func genStencil(cfg config.Config) ([]cpu.Program, error) {
	P := cfg.System.Cores
	span := cfg.Workload.Scale
	iters := cfg.Workload.Iterations
	lb := cfg.System.L1LineBytes
	width := cfg.MeshWidth()
	const base = 1 << 20

	progs := make([]cpu.Program, P)
	for c := 0; c < P; c++ {
		var p cpu.Program
		x, y := c%width, c/width
		neighbors := []int{}
		if y > 0 {
			neighbors = append(neighbors, c-width)
		}
		if y < width-1 {
			neighbors = append(neighbors, c+width)
		}
		if x > 0 {
			neighbors = append(neighbors, c-1)
		}
		if x < width-1 {
			neighbors = append(neighbors, c+1)
		}
		myBase := region(base, c, span)
		for it := 0; it < iters; it++ {
			// Halo exchange: read the two boundary rows of each
			// neighbor's block.
			for _, nb := range neighbors {
				nbBase := region(base, nb, span)
				p = append(p,
					cpu.Load(lineAddr(nbBase, lb)),
					cpu.Load(lineAddr(nbBase+uint64(span-1), lb)),
				)
			}
			// Compute on the block: cost ∝ cells.
			cells := float64(span * span)
			p = append(p, cpu.Compute(scaleCompute(cells, cfg.Workload.ComputeScale)))
			// Write back the whole block.
			for r := 0; r < span; r++ {
				p = append(p, cpu.Store(lineAddr(myBase+uint64(r), lb)))
			}
			p = append(p, cpu.Barrier(0)) // id patched below
		}
		progs[c] = p
	}
	patchBarriers(progs, iters)
	return progs, nil
}

// genFFT produces a log₂(P)-stage butterfly: at stage s each core exchanges
// its block with partner id^(1<<s), with a barrier between stages.
func genFFT(cfg config.Config) ([]cpu.Program, error) {
	P := cfg.System.Cores
	if P&(P-1) != 0 {
		return nil, fmt.Errorf("workload: fft needs a power-of-two core count, got %d", P)
	}
	span := cfg.Workload.Scale
	lb := cfg.System.L1LineBytes
	const base = 2 << 20
	stages := 0
	for 1<<stages < P {
		stages++
	}
	progs := make([]cpu.Program, P)
	for c := 0; c < P; c++ {
		var p cpu.Program
		myBase := region(base, c, span)
		// Initial local work: bit-reverse shuffle + first butterflies.
		p = append(p, cpu.Compute(scaleCompute(float64(span*8), cfg.Workload.ComputeScale)))
		for r := 0; r < span; r++ {
			p = append(p, cpu.Store(lineAddr(myBase+uint64(r), lb)))
		}
		p = append(p, cpu.Barrier(0))
		for s := 0; s < stages; s++ {
			partner := c ^ (1 << s)
			pBase := region(base, partner, span)
			for r := 0; r < span; r++ {
				p = append(p, cpu.Load(lineAddr(pBase+uint64(r), lb)))
			}
			p = append(p, cpu.Compute(scaleCompute(float64(span*16), cfg.Workload.ComputeScale)))
			for r := 0; r < span; r++ {
				p = append(p, cpu.Store(lineAddr(myBase+uint64(r), lb)))
			}
			p = append(p, cpu.Barrier(0))
		}
		progs[c] = p
	}
	patchBarriers(progs, stages+1)
	return progs, nil
}

// genLU produces a blocked right-looking LU elimination: step k's owner
// factors and publishes the pivot block; everyone else reads it and updates
// their remaining blocks. Parallelism shrinks as k advances, which is
// exactly the load-imbalance shape that separates naive replay from the
// corrected model.
func genLU(cfg config.Config) ([]cpu.Program, error) {
	P := cfg.System.Cores
	steps := cfg.Workload.Scale
	lb := cfg.System.L1LineBytes
	const base = 3 << 20
	const pivotLines = 4
	progs := make([]cpu.Program, P)
	for c := 0; c < P; c++ {
		var p cpu.Program
		for k := 0; k < steps; k++ {
			owner := k % P
			pivBase := region(base, k, pivotLines)
			if c == owner {
				// Factor the pivot block.
				p = append(p, cpu.Compute(scaleCompute(float64(pivotLines*pivotLines*16), cfg.Workload.ComputeScale)))
				for r := 0; r < pivotLines; r++ {
					p = append(p, cpu.Store(lineAddr(pivBase+uint64(r), lb)))
				}
			} else {
				// Idle cores do a sliver of local work so the
				// barrier arrival spread is realistic.
				p = append(p, cpu.Compute(scaleCompute(4, cfg.Workload.ComputeScale)))
			}
			p = append(p, cpu.Barrier(0))
			// Everyone still active reads the pivot and updates its
			// trailing blocks; cores "retire" as elimination passes
			// their panel.
			active := c >= (k % P)
			if active {
				for r := 0; r < pivotLines; r++ {
					p = append(p, cpu.Load(lineAddr(pivBase+uint64(r), lb)))
				}
				myBase := region(base+uint64(steps*pivotLines), c, pivotLines)
				p = append(p, cpu.Compute(scaleCompute(float64(pivotLines*pivotLines*8), cfg.Workload.ComputeScale)))
				for r := 0; r < pivotLines; r++ {
					p = append(p, cpu.Store(lineAddr(myBase+uint64(r), lb)))
				}
			}
			p = append(p, cpu.Barrier(0))
		}
		progs[c] = p
	}
	patchBarriers(progs, 2*steps)
	return progs, nil
}

// genSort produces a sample-sort bucket exchange: local sort, then each core
// appends into every bucket under that bucket's lock (lock-ordered
// all-to-all), then a barrier and a local merge.
func genSort(cfg config.Config) ([]cpu.Program, error) {
	P := cfg.System.Cores
	keysPerCore := cfg.Workload.Scale
	lb := cfg.System.L1LineBytes
	const base = 4 << 20
	const bucketLines = 2
	progs := make([]cpu.Program, P)
	for c := 0; c < P; c++ {
		var p cpu.Program
		// Local sort: n log n.
		n := float64(keysPerCore)
		p = append(p, cpu.Compute(scaleCompute(n*4, cfg.Workload.ComputeScale)))
		// Exchange: visit buckets starting at our own to stagger lock
		// contention, as a real implementation would.
		for i := 0; i < P; i++ {
			b := (c + i) % P
			bBase := region(base, b, bucketLines)
			p = append(p, cpu.Lock(uint64(b+1)))
			for r := 0; r < bucketLines; r++ {
				p = append(p,
					cpu.Load(lineAddr(bBase+uint64(r), lb)),
					cpu.Store(lineAddr(bBase+uint64(r), lb)),
				)
			}
			p = append(p, cpu.Unlock(uint64(b+1)))
		}
		p = append(p, cpu.Barrier(0))
		// Final local merge of the received bucket.
		p = append(p, cpu.Compute(scaleCompute(n*2, cfg.Workload.ComputeScale)))
		progs[c] = p
	}
	patchBarriers(progs, 1)
	return progs, nil
}

// patchBarriers rewrites the placeholder Barrier(0) ops with sequential IDs
// consistent across cores: the i-th barrier in every core's program gets ID
// i+1. Kernels are SPMD, so barrier counts match by construction; a mismatch
// panics immediately rather than hanging the simulation.
func patchBarriers(progs []cpu.Program, expect int) {
	for c := range progs {
		n := 0
		for i := range progs[c] {
			if progs[c][i].Kind == cpu.OpBarrier {
				n++
				progs[c][i].Arg = uint64(n)
			}
		}
		if n != expect {
			panic(fmt.Sprintf("workload: core %d has %d barriers, expected %d", c, n, expect))
		}
	}
}

// KernelNames lists the available kernels in report order.
func KernelNames() []string { return []string{"fft", "lu", "stencil", "sort", "reduce"} }
