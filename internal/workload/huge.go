package workload

import (
	"fmt"
	"io"
	"os"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// Huge-trace generation: a deterministic streaming trace generator that
// writes through trace.Writer without ever materializing events, so traces
// far larger than memory can be produced for the out-of-core replay path
// (`tracegen -huge`). The generated traces carry realistic structure for the
// streaming engines to chew on: per-source causal chains (every event
// program-depends on its source's previous event, bounding the dependency
// span by the node count), occasional cross-source causal edges, and
// capture-order reference timestamps (RefInject nondecreasing in ID, as a
// real recorder produces).

// HugeSpec parameterizes the generator. The zero value is invalid; use
// DefaultHugeSpec as a base.
type HugeSpec struct {
	// Nodes is the endpoint count; must be ≥ 2.
	Nodes int
	// Events is the total event count; must be ≥ 1.
	Events int
	// Pattern selects destinations: "uniform", "hotspot" (half the traffic
	// converges on node 0), or "neighbor" (ring next-neighbor).
	Pattern string
	// Bytes is the mean payload size; actual sizes vary ±50%.
	Bytes int
	// Gap is the mean think time between a source's events, in cycles.
	Gap int
	// Seed makes the stream reproducible: equal specs yield byte-identical
	// traces.
	Seed uint64
}

// DefaultHugeSpec is a reasonable 16-node uniform workload shape.
func DefaultHugeSpec() HugeSpec {
	return HugeSpec{Nodes: 16, Events: 1 << 20, Pattern: "uniform", Bytes: 64, Gap: 20, Seed: 1}
}

func (s HugeSpec) validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("workload: huge trace needs ≥2 nodes, have %d", s.Nodes)
	}
	if s.Events < 1 {
		return fmt.Errorf("workload: huge trace needs ≥1 events, have %d", s.Events)
	}
	if s.Bytes < 1 {
		return fmt.Errorf("workload: huge trace needs bytes ≥1, have %d", s.Bytes)
	}
	if s.Gap < 0 {
		return fmt.Errorf("workload: huge trace needs gap ≥0, have %d", s.Gap)
	}
	switch s.Pattern {
	case "uniform", "hotspot", "neighbor":
		return nil
	default:
		return fmt.Errorf("workload: unknown huge-trace pattern %q (want uniform, hotspot, or neighbor)", s.Pattern)
	}
}

// workloadName labels the generated trace for reports.
func (s HugeSpec) workloadName() string {
	return fmt.Sprintf("huge-%s-n%d", s.Pattern, s.Nodes)
}

// hugeState is the O(nodes) generator state: per-source last event and
// clock. Nothing grows with the event count.
type hugeState struct {
	spec    HugeSpec
	rng     *sim.RNG
	lastID  []trace.EventID // per source, 0 = none yet
	nextAt  []sim.Tick      // per source, earliest next injection
	lastArr []sim.Tick      // per source, last event's arrival estimate
	clock   sim.Tick        // global nondecreasing injection clock
	deps    [2]trace.Dep    // reusable dep buffer
}

func newHugeState(spec HugeSpec) *hugeState {
	return &hugeState{
		spec:    spec,
		rng:     sim.NewStream(spec.Seed, "huge-trace"),
		lastID:  make([]trace.EventID, spec.Nodes),
		nextAt:  make([]sim.Tick, spec.Nodes),
		lastArr: make([]sim.Tick, spec.Nodes),
	}
}

// dst picks a destination per the spec's pattern.
func (g *hugeState) dst(src int) int {
	switch g.spec.Pattern {
	case "hotspot":
		if src != 0 && g.rng.Bernoulli(0.5) {
			return 0
		}
	case "neighbor":
		return (src + 1) % g.spec.Nodes
	}
	for {
		d := g.rng.Intn(g.spec.Nodes)
		if d != src {
			return d
		}
	}
}

// next fills *e with event id. Sources take turns round-robin with jitter,
// so RefInject is nondecreasing while spans between an event and its
// program-order predecessor stay ≈ the node count.
func (g *hugeState) next(e *trace.Event, id trace.EventID) {
	src := g.rng.Intn(g.spec.Nodes)
	gap := sim.Tick(1 + g.rng.Intn(2*g.spec.Gap+1))
	size := g.spec.Bytes/2 + g.rng.Intn(g.spec.Bytes+1)
	if size < 1 {
		size = 1
	}
	dst := g.dst(src)

	// Capture-order clock: injections are globally nondecreasing, each
	// source also respects its own previous event.
	at := g.clock + sim.Tick(g.rng.Intn(4))
	if t := g.nextAt[src]; t > at {
		at = t
	}
	g.clock = at

	deps := g.deps[:0]
	if g.lastID[src] != trace.None {
		deps = append(deps, trace.Dep{On: g.lastID[src], Class: trace.DepProgram})
	}
	// Occasional cross-source causality: depend on the destination's last
	// event, exercising dep edges that span several sources' interleavings.
	if other := g.lastID[dst]; other != trace.None && other != g.lastID[src] && g.rng.Bernoulli(0.25) {
		deps = append(deps, trace.Dep{On: other, Class: trace.DepCausal})
	}

	lat := sim.Tick(5 + g.rng.Intn(30))
	*e = trace.Event{
		ID:        id,
		Src:       src,
		Dst:       dst,
		Bytes:     size,
		Class:     noc.ClassRequest,
		Kind:      trace.KindData,
		Gap:       gap,
		Deps:      deps,
		RefInject: at,
		RefArrive: at + lat,
	}
	g.lastID[src] = id
	g.nextAt[src] = at + gap
	g.lastArr[src] = at + lat
}

// WriteHuge streams a generated trace to w with O(nodes) resident memory.
// It returns the trace's reference makespan.
func WriteHuge(w io.Writer, spec HugeSpec) (sim.Tick, error) {
	if err := spec.validate(); err != nil {
		return 0, err
	}
	// The header needs the makespan before any event is written, and the
	// format is length-prefixed anyway, so the generator runs twice from the
	// same seed: a dry pass for the makespan, a real pass for the bytes.
	// Generation is pure arithmetic — both passes stream in O(nodes).
	dry := newHugeState(spec)
	var e trace.Event
	var maxArr sim.Tick
	for i := 0; i < spec.Events; i++ {
		dry.next(&e, trace.EventID(i+1))
		if e.RefArrive > maxArr {
			maxArr = e.RefArrive
		}
	}
	makespan := maxArr + sim.Tick(spec.Gap)

	gen := newHugeState(spec)
	sw, err := trace.NewWriter(w, trace.Meta{
		Nodes:       spec.Nodes,
		Workload:    spec.workloadName(),
		RefMakespan: makespan,
		NumEvents:   spec.Events,
	})
	if err != nil {
		return 0, err
	}
	for i := 0; i < spec.Events; i++ {
		gen.next(&e, trace.EventID(i+1))
		if err := sw.Append(&e); err != nil {
			return 0, err
		}
	}
	return makespan, sw.Close()
}

// WriteHugeFile streams a generated trace to a file on disk.
func WriteHugeFile(path string, spec HugeSpec) (sim.Tick, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("workload: %w", err)
	}
	makespan, err := WriteHuge(f, spec)
	if err != nil {
		f.Close()
		return 0, err
	}
	return makespan, f.Close()
}
