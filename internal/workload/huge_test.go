package workload

import (
	"bytes"
	"testing"

	"onocsim/internal/trace"
)

func hugeSpecForTest(pattern string) HugeSpec {
	return HugeSpec{Nodes: 8, Events: 2000, Pattern: pattern, Bytes: 64, Gap: 10, Seed: 7}
}

func TestWriteHugeRoundTripsAndValidates(t *testing.T) {
	for _, pattern := range []string{"uniform", "hotspot", "neighbor"} {
		var buf bytes.Buffer
		makespan, err := WriteHuge(&buf, hugeSpecForTest(pattern))
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		tr, err := trace.ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", pattern, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: generated trace invalid: %v", pattern, err)
		}
		if len(tr.Events) != 2000 || tr.Nodes != 8 {
			t.Fatalf("%s: got %d events over %d nodes", pattern, len(tr.Events), tr.Nodes)
		}
		if tr.RefMakespan != makespan {
			t.Fatalf("%s: header makespan %d, returned %d", pattern, tr.RefMakespan, makespan)
		}
		// Capture order: the streaming summary replay depends on RefInject
		// being nondecreasing in ID.
		for i := 1; i < len(tr.Events); i++ {
			if tr.Events[i].RefInject < tr.Events[i-1].RefInject {
				t.Fatalf("%s: event %d injects at %d before event %d at %d",
					pattern, i+1, tr.Events[i].RefInject, i, tr.Events[i-1].RefInject)
			}
		}
		// Every event past a source's first must carry its program-order dep,
		// so dependency chains actually constrain replay.
		deps := 0
		for i := range tr.Events {
			deps += len(tr.Events[i].Deps)
		}
		if deps < len(tr.Events)/2 {
			t.Fatalf("%s: only %d deps across %d events", pattern, deps, len(tr.Events))
		}
	}
}

func TestWriteHugeDeterministic(t *testing.T) {
	spec := hugeSpecForTest("uniform")
	var a, b bytes.Buffer
	if _, err := WriteHuge(&a, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteHuge(&b, spec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("equal specs produced different bytes")
	}
	spec.Seed++
	var c bytes.Buffer
	if _, err := WriteHuge(&c, spec); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical bytes")
	}
}

func TestWriteHugeFileMatchesWriter(t *testing.T) {
	spec := hugeSpecForTest("neighbor")
	var mem bytes.Buffer
	if _, err := WriteHuge(&mem, spec); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/huge.sctm"
	if _, err := WriteHugeFile(path, spec); err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := trace.ReadBinary(bytes.NewReader(mem.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if src.Meta().NumEvents != len(want.Events) {
		t.Fatalf("file declares %d events, want %d", src.Meta().NumEvents, len(want.Events))
	}
}

func TestWriteHugeRejectsBadSpecs(t *testing.T) {
	cases := []HugeSpec{
		{Nodes: 1, Events: 10, Pattern: "uniform", Bytes: 8, Gap: 1},
		{Nodes: 4, Events: 0, Pattern: "uniform", Bytes: 8, Gap: 1},
		{Nodes: 4, Events: 10, Pattern: "uniform", Bytes: 0, Gap: 1},
		{Nodes: 4, Events: 10, Pattern: "uniform", Bytes: 8, Gap: -1},
		{Nodes: 4, Events: 10, Pattern: "zipf", Bytes: 8, Gap: 1},
	}
	for i, spec := range cases {
		if _, err := WriteHuge(&bytes.Buffer{}, spec); err == nil {
			t.Fatalf("case %d: invalid spec %+v accepted", i, spec)
		}
	}
}
