package analytic

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// hotspotTrace builds a contended synthetic trace: every node fires bursts
// at destination 0 (plus a self message, which bypasses the fabric), with
// reference timings loose enough that the analytic tail term is exercised.
func hotspotTrace(nodes, burst int) *trace.Trace {
	tr := &trace.Trace{Nodes: nodes, Workload: "hotspot"}
	id := trace.EventID(1)
	var t sim.Tick
	for b := 0; b < burst; b++ {
		for src := 0; src < nodes; src++ {
			dst := 0
			if src == 0 {
				dst = src // self-traffic
			}
			tr.Events = append(tr.Events, trace.Event{
				ID: id, Src: src, Dst: dst, Bytes: 64 + 8*src, Gap: 2,
				RefInject: t, RefArrive: t + 40,
			})
			id++
			t += 3
		}
	}
	tr.RefMakespan = t + 500
	return tr
}

// uniformTrace spreads single messages across distinct pairs: negligible
// per-resource load, so contention waits should stay near zero.
func uniformTrace(nodes int) *trace.Trace {
	tr := &trace.Trace{Nodes: nodes, Workload: "uniform"}
	for i := 0; i < nodes; i++ {
		tr.Events = append(tr.Events, trace.Event{
			ID: trace.EventID(i + 1), Src: i, Dst: (i + 1) % nodes, Bytes: 32,
			Gap: sim.Tick(1000 * i), RefInject: sim.Tick(1000 * i), RefArrive: sim.Tick(1000*i + 50),
		})
	}
	tr.RefMakespan = sim.Tick(1000 * nodes)
	return tr
}

func cfgFor(t *testing.T, kind config.NetworkKind, mutate func(*config.Config)) config.Config {
	t.Helper()
	cfg := config.Default()
	cfg.System.Cores = 16
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	return cfg
}

func allKinds() map[string]config.NetworkKind {
	return map[string]config.NetworkKind{
		"electrical": config.NetElectrical,
		"optical":    config.NetOptical,
		"ideal":      config.NetIdeal,
		"hybrid":     config.NetHybrid,
	}
}

func TestEstimateAllKinds(t *testing.T) {
	tr := hotspotTrace(16, 8)
	for name, kind := range allKinds() {
		t.Run(name, func(t *testing.T) {
			cfg := cfgFor(t, kind, nil)
			res, err := Estimate(cfg, kind, tr)
			if err != nil {
				t.Fatalf("Estimate: %v", err)
			}
			if len(res.Latency) != len(tr.Events) {
				t.Fatalf("got %d latencies for %d events", len(res.Latency), len(tr.Events))
			}
			for i, l := range res.Latency {
				if l < 1 {
					t.Fatalf("latency[%d] = %d, want ≥1", i, l)
				}
			}
			if res.MeanLatency <= 0 {
				t.Fatalf("mean latency %v, want >0", res.MeanLatency)
			}
			if res.Makespan < res.ZeroLoadMakespan {
				t.Fatalf("makespan %d below zero-load %d", res.Makespan, res.ZeroLoadMakespan)
			}
		})
	}
}

func TestEstimateSWMR(t *testing.T) {
	cfg := cfgFor(t, config.NetOptical, func(c *config.Config) { c.Optical.Architecture = "swmr" })
	res, err := Estimate(cfg, config.NetOptical, hotspotTrace(16, 8))
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan %d, want >0", res.Makespan)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	tr := hotspotTrace(16, 6)
	for name, kind := range allKinds() {
		cfg := cfgFor(t, kind, nil)
		a, err := Estimate(cfg, kind, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Estimate(cfg, kind, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: estimate not deterministic", name)
		}
	}
}

func TestContentionRaisesHotspotEstimate(t *testing.T) {
	// A destination-0 hotspot must cost more than zero-load on the
	// contended fabrics; that gap is the whole point of the model.
	tr := hotspotTrace(16, 16)
	for _, name := range []string{"electrical", "optical"} {
		kind := allKinds()[name]
		cfg := cfgFor(t, kind, nil)
		res, err := Estimate(cfg, kind, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Makespan <= res.ZeroLoadMakespan {
			t.Fatalf("%s: hotspot makespan %d not above zero-load %d", name, res.Makespan, res.ZeroLoadMakespan)
		}
	}
}

func TestUncontendedStaysNearZeroLoad(t *testing.T) {
	tr := uniformTrace(16)
	for name, kind := range allKinds() {
		cfg := cfgFor(t, kind, nil)
		res, err := Estimate(cfg, kind, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		probe, err := buildProbe(cfg, kind)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range tr.Events {
			e := &tr.Events[i]
			zl := probe.ZeroLoadLatency(e.Src, e.Dst, e.Bytes)
			if res.Latency[i] < zl {
				t.Fatalf("%s: latency[%d] = %d below zero-load %d", name, i, res.Latency[i], zl)
			}
			// One isolated message per resource: the wait term must stay a
			// small fraction of the zero-load latency.
			if res.Latency[i] > 2*zl+4 {
				t.Fatalf("%s: latency[%d] = %d far above zero-load %d on an idle fabric", name, i, res.Latency[i], zl)
			}
		}
	}
}

func TestEstimateRejectsMismatchedNodes(t *testing.T) {
	cfg := cfgFor(t, config.NetOptical, nil)
	if _, err := Estimate(cfg, config.NetOptical, hotspotTrace(8, 2)); err == nil {
		t.Fatal("want node-count mismatch error")
	}
	if seed := Seed(cfg, config.NetOptical, hotspotTrace(8, 2)); seed != nil {
		t.Fatal("Seed must return nil on estimator error")
	}
}

func TestEstimateRejectsUnknownKind(t *testing.T) {
	cfg := cfgFor(t, config.NetOptical, nil)
	if _, err := Estimate(cfg, config.NetworkKind("quantum"), hotspotTrace(16, 1)); err == nil {
		t.Fatal("want unknown-kind error")
	}
}

func TestSeedMatchesEstimateLatency(t *testing.T) {
	cfg := cfgFor(t, config.NetElectrical, nil)
	tr := hotspotTrace(16, 4)
	res, err := Estimate(cfg, config.NetElectrical, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := Seed(cfg, config.NetElectrical, tr); !reflect.DeepEqual(got, res.Latency) {
		t.Fatal("Seed diverges from Estimate().Latency")
	}
}

func TestMeshWalkMatchesManhattan(t *testing.T) {
	for _, topo := range []string{"mesh", "torus"} {
		cfg := config.Default()
		cfg.Mesh.Topology = topo
		tr := &trace.Trace{Nodes: 16}
		m := newMeshModel(cfg, tr, nil)
		w := m.width
		for src := 0; src < 16; src++ {
			for dst := 0; dst < 16; dst++ {
				hops := 0
				m.walk(src, dst, func(int) { hops++ })
				hx := abs(src%w - dst%w)
				hy := abs(src/w - dst/w)
				if topo == "torus" {
					if wr := w - hx; wr < hx {
						hx = wr
					}
					if wr := w - hy; wr < hy {
						hy = wr
					}
				}
				if hops != hx+hy {
					t.Fatalf("%s walk %d->%d took %d hops, want %d", topo, src, dst, hops, hx+hy)
				}
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestFaultedEstimateNotBelowHealthy(t *testing.T) {
	tr := hotspotTrace(16, 8)
	healthy := cfgFor(t, config.NetOptical, nil)
	base, err := Estimate(healthy, config.NetOptical, tr)
	if err != nil {
		t.Fatal(err)
	}
	faulted := cfgFor(t, config.NetOptical, func(c *config.Config) {
		c.Faults.LaserDroopDB = 3
		c.Faults.ThermalMTBF = 4000
		c.Faults.ThermalDuration = 1000
		c.Faults.ThermalDetune = 0.5
	})
	deg, err := Estimate(faulted, config.NetOptical, tr)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Makespan < base.Makespan {
		t.Fatalf("faulted makespan %d below healthy %d", deg.Makespan, base.Makespan)
	}
}

// TestEstimateConcurrent hammers the shared probe cache from many
// goroutines mixing kinds and configs: results must match the serial
// answers, and the race detector checks the entry locking around the
// probes' internal serialization-table memoization.
func TestEstimateConcurrent(t *testing.T) {
	tr := hotspotTrace(16, 8)
	kinds := allKinds()
	want := map[string]Result{}
	for name, kind := range kinds {
		res, err := Estimate(cfgFor(t, kind, nil), kind, tr)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = res
	}
	cfgs := map[string]config.Config{}
	for name, kind := range kinds {
		cfgs[name] = cfgFor(t, kind, nil)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		for name, kind := range kinds {
			wg.Add(1)
			go func(name string, kind config.NetworkKind) {
				defer wg.Done()
				res, err := Estimate(cfgs[name], kind, tr)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res, want[name]) {
					errs <- fmt.Errorf("%s: concurrent estimate diverged", name)
				}
			}(name, kind)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
