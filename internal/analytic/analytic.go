// Package analytic provides closed-form per-fabric latency estimators for
// dependency-annotated traces: zero-load latency plus a contention term
// derived from the trace's per-src/dst offered-load histogram, computed in
// O(events) with no event loop.
//
// The estimate serves two roles. As the self-correction seed
// (config.SCTM.Seed = "analytic") it replaces the pure zero-load round-0
// latencies with contention-aware ones, so the fixpoint loop starts near its
// answer and converges in fewer replay rounds. As a screening backend
// (Session.Estimate) it prices a configuration in microseconds, cheap enough
// to drive large design-space sweeps that only simulate the survivors.
//
// The contention model is an M/D/1-style queueing correction in the spirit
// of Mandal et al., "Analytical Performance Models for NoCs with Multiple
// Priority Traffic Classes": each fabric resource r (an MWSR destination
// home channel, an SWMR source channel, a directed mesh link, an ideal
// injection port) offers utilization ρ_r = demand_r / T, where demand_r is
// the total service time the trace asks of r and T is the schedule horizon,
// and charges each message crossing it a queueing wait
//
//	W_r = ρ_r/(1−ρ_r) · S_r/2
//
// with S_r the mean per-message service time on r and ρ_r clamped below
// saturation. The horizon T starts as the zero-load schedule makespan and is
// refined once against the contention-stretched schedule, tempering the
// utilization overestimate on heavily loaded traces. Laser-droop derating
// (photonics.RateDerateTable, via the fabric's DerateFactor), expected-value
// thermal-drift capacity loss, and expected token-outage unavailability all
// scale the demanded service, so faulted configs estimate accordingly.
package analytic

import (
	"fmt"
	"math"
	"sync"

	"onocsim/internal/config"
	"onocsim/internal/core"
	"onocsim/internal/enoc"
	"onocsim/internal/hybrid"
	"onocsim/internal/noc"
	"onocsim/internal/onoc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// maxUtilization clamps per-resource utilization below saturation: the
// closed form diverges at ρ=1, while the simulated fabric merely queues.
const maxUtilization = 0.95

// Result is a closed-form latency estimate for one (config, fabric, trace)
// triple. It round-trips through encoding/json so sessions can cache it.
type Result struct {
	// Latency is the per-event estimate (zero-load plus contention), in
	// trace event order — the self-correction round-0 seed.
	Latency []sim.Tick `json:"latency"`
	// MeanLatency averages Latency over all events.
	MeanLatency float64 `json:"mean_latency"`
	// Makespan is the completion-time estimate: the dependency schedule
	// under Latency, plus the capture run's trailing computation.
	Makespan sim.Tick `json:"makespan"`
	// ZeroLoadMakespan is the same schedule under pure zero-load latencies —
	// the contention-free lower bound, reported for error banding.
	ZeroLoadMakespan sim.Tick `json:"zero_load_makespan"`
}

// Estimate computes the closed-form latency estimate of replaying tr on a
// fabric of the given kind. It never ticks a fabric: the cost is two or
// three O(events) schedule passes plus an O(events + pairs·√nodes)
// histogram pass.
func Estimate(cfg config.Config, kind config.NetworkKind, tr *trace.Trace) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, fmt.Errorf("analytic: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return Result{}, fmt.Errorf("analytic: invalid trace: %w", err)
	}
	if tr.Nodes != cfg.System.Cores {
		return Result{}, fmt.Errorf("analytic: trace has %d nodes, config %d cores", tr.Nodes, cfg.System.Cores)
	}
	entry, err := acquireProbe(cfg, kind)
	if err != nil {
		return Result{}, err
	}
	probe := entry.probe
	opts := core.ScheduleOptions{
		DisableSyncDeps:   cfg.SCTM.DisableSyncDeps,
		DisableCausalDeps: cfg.SCTM.DisableCausalDeps,
	}
	n := len(tr.Events)
	lat0 := make([]sim.Tick, n)
	for i := range tr.Events {
		e := &tr.Events[i]
		lat0[i] = probe.ZeroLoadLatency(e.Src, e.Dst, e.Bytes)
	}
	inject := core.Schedule(tr, lat0, opts)
	t0 := horizon(inject, lat0)

	m, err := buildModel(cfg, kind, tr, probe)
	entry.mu.Unlock() // the model holds no probe references past construction
	if err != nil {
		return Result{}, err
	}
	lat := m.seed(lat0, float64(t0))
	inject = core.Schedule(tr, lat, opts)
	// One refinement pass: the zero-load horizon overstates utilization
	// exactly when contention matters, so recompute the waits against the
	// contention-stretched schedule. The sequence is decreasing in the wait
	// term and one step lands close to its fixpoint.
	if t1 := horizon(inject, lat); t1 > t0 {
		lat = m.seed(lat0, float64(t1))
		inject = core.Schedule(tr, lat, opts)
	}

	res := Result{Latency: lat}
	var sum float64
	for i := range lat {
		sum += float64(lat[i])
	}
	if n > 0 {
		res.MeanLatency = sum / float64(n)
	}
	res.ZeroLoadMakespan = t0 + tail(tr)
	res.Makespan = horizon(inject, lat) + tail(tr)
	return res, nil
}

// Seed returns the analytic per-event round-0 seed for the self-correction
// loop, or nil when the estimator declines (any error): callers fall back to
// zero-load seeding, which is always available.
func Seed(cfg config.Config, kind config.NetworkKind, tr *trace.Trace) []sim.Tick {
	res, err := Estimate(cfg, kind, tr)
	if err != nil {
		return nil
	}
	return res.Latency
}

// horizon returns the schedule completion time max(inject+latency), never
// below 1 so utilization divisions stay defined.
func horizon(inject, lat []sim.Tick) sim.Tick {
	var t sim.Tick = 1
	for i := range inject {
		if a := inject[i] + lat[i]; a > t {
			t = a
		}
	}
	return t
}

// tail is the capture run's trailing computation after the last arrival,
// mirroring the replay engines' makespan finalization.
func tail(tr *trace.Trace) sim.Tick {
	var maxRef sim.Tick
	for i := range tr.Events {
		if a := tr.Events[i].RefArrive; a > maxRef {
			maxRef = a
		}
	}
	if t := tr.RefMakespan - maxRef; t > 0 {
		return t
	}
	return 0
}

// buildProbe constructs the fabric whose ZeroLoadLatency anchors the
// estimate — the same constructors the replay engines use, so zero-load
// terms (derate tables, torus wrap, hybrid routing) agree exactly.
func buildProbe(cfg config.Config, kind config.NetworkKind) (noc.Network, error) {
	nodes := cfg.System.Cores
	switch kind {
	case config.NetElectrical:
		return enoc.New(nodes, cfg.Mesh), nil
	case config.NetOptical:
		if cfg.Optical.Architecture == "swmr" {
			return onoc.NewSWMRWithFaults(nodes, cfg.Optical, cfg.Faults, cfg.Seed), nil
		}
		return onoc.NewWithFaults(nodes, cfg.Optical, cfg.Faults, cfg.Seed), nil
	case config.NetIdeal:
		return noc.NewIdeal(nodes, sim.Tick(cfg.Ideal.LatencyCycles), cfg.Ideal.BytesPerCycle), nil
	case config.NetHybrid:
		return hybrid.NewWithFaults(nodes, cfg.Mesh, cfg.Optical, cfg.Hybrid.Threshold, cfg.Faults, cfg.Seed), nil
	default:
		return nil, fmt.Errorf("analytic: unknown network kind %q", kind)
	}
}

// probeEntry is one cached fabric probe. Probes memoize serialization
// tables internally while answering queries, so each entry carries a mutex
// and Estimate holds it for the duration of its probe use.
type probeEntry struct {
	mu    sync.Mutex
	cfg   config.Config
	kind  config.NetworkKind
	probe noc.Network
}

// probeCache memoizes probes across Estimate calls: fabric construction
// (photonic budgets, derate tables) is O(nodes²) and would otherwise dominate
// the estimator. Config is a flat comparable struct, so the key is the
// (config, kind) pair itself — no hashing. The ring holds the handful of
// configs a sweep or correction loop alternates between; overwriting an
// in-use entry is safe because holders keep their own *probeEntry.
var probeCache struct {
	mu      sync.Mutex
	entries [8]*probeEntry
	next    int
}

// acquireProbe returns a probe for (cfg, kind) with its entry mutex held;
// the caller unlocks it when done querying.
func acquireProbe(cfg config.Config, kind config.NetworkKind) (*probeEntry, error) {
	probeCache.mu.Lock()
	for _, e := range probeCache.entries {
		if e != nil && e.kind == kind && e.cfg == cfg {
			probeCache.mu.Unlock()
			e.mu.Lock()
			return e, nil
		}
	}
	probeCache.mu.Unlock()
	probe, err := buildProbe(cfg, kind)
	if err != nil {
		return nil, err
	}
	e := &probeEntry{cfg: cfg, kind: kind, probe: probe}
	e.mu.Lock()
	probeCache.mu.Lock()
	probeCache.entries[probeCache.next] = e
	probeCache.next = (probeCache.next + 1) % len(probeCache.entries)
	probeCache.mu.Unlock()
	return e, nil
}

// model maps a horizon to per-event seeded latencies.
type model interface {
	// seed returns lat0 plus each event's queueing wait at horizon T.
	seed(lat0 []sim.Tick, T float64) []sim.Tick
}

// buildModel dispatches to the per-fabric contention model.
func buildModel(cfg config.Config, kind config.NetworkKind, tr *trace.Trace, probe noc.Network) (model, error) {
	switch kind {
	case config.NetOptical:
		xb, ok := probe.(crossbar)
		if !ok {
			return nil, fmt.Errorf("analytic: optical probe %T lacks the crossbar surface", probe)
		}
		byDst := cfg.Optical.Architecture != "swmr"
		return newChannelModel(cfg, tr, xb, byDst, nil), nil
	case config.NetElectrical:
		return newMeshModel(cfg, tr, nil), nil
	case config.NetIdeal:
		return newIdealModel(cfg, tr), nil
	case config.NetHybrid:
		return newHybridModel(cfg, tr, probe.(*hybrid.Network))
	default:
		return nil, fmt.Errorf("analytic: unknown network kind %q", kind)
	}
}

// crossbar is the slice of the photonic fabric API the channel model needs;
// both the MWSR and SWMR crossbars implement it.
type crossbar interface {
	SerializationCycles(bytes int) sim.Tick
	DerateFactor(src, dst int) sim.Tick
}

// resourceModel is the shared single-resource-per-event queueing machinery:
// each event demands service of exactly one resource (a home channel, a
// sender channel, an injection port), and waits W_r = ρ/(1−ρ)·S_r/2 on it.
type resourceModel struct {
	svc   []float64 // total service cycles demanded per resource
	msgs  []int64   // messages per resource
	evRes []int32   // resource of each event, −1 for none (self-traffic)
}

func newResourceModel(resources, events int) *resourceModel {
	m := &resourceModel{
		svc:   make([]float64, resources),
		msgs:  make([]int64, resources),
		evRes: make([]int32, events),
	}
	for i := range m.evRes {
		m.evRes[i] = -1
	}
	return m
}

// charge records event i demanding svc cycles of resource r.
func (m *resourceModel) charge(i, r int, svc float64) {
	m.svc[r] += svc
	m.msgs[r]++
	m.evRes[i] = int32(r)
}

func (m *resourceModel) seed(lat0 []sim.Tick, T float64) []sim.Tick {
	wait := make([]float64, len(m.svc))
	for r := range m.svc {
		if m.msgs[r] == 0 {
			continue
		}
		rho := m.svc[r] / T
		if rho > maxUtilization {
			rho = maxUtilization
		}
		mean := m.svc[r] / float64(m.msgs[r])
		wait[r] = rho / (1 - rho) * mean / 2
	}
	out := make([]sim.Tick, len(lat0))
	for i := range lat0 {
		out[i] = lat0[i]
		if r := m.evRes[i]; r >= 0 {
			out[i] += sim.Tick(wait[r] + 0.5)
		}
	}
	return out
}

// driftScale is the expected serialization stretch from thermal drift: a
// drift window detunes part of a channel's WDM degree for
// ThermalDuration out of every ThermalMTBF+ThermalDuration cycles, so
// expected capacity shrinks by the duty-weighted wavelength loss.
func driftScale(o config.Optical, f config.Faults) float64 {
	if f.ThermalMTBF <= 0 {
		return 1
	}
	duty := float64(f.ThermalDuration) / float64(f.ThermalMTBF+f.ThermalDuration)
	avail := o.WavelengthsPerChannel - int(float64(o.WavelengthsPerChannel)*f.ThermalDetune)
	if avail < 1 {
		avail = 1
	}
	return (1 - duty) + duty*float64(o.WavelengthsPerChannel)/float64(avail)
}

// tokenScale inflates channel demand for the expected fraction of time an
// MWSR home channel sits stalled in a token-loss outage.
func tokenScale(f config.Faults) float64 {
	if f.TokenMTBF <= 0 {
		return 1
	}
	out := float64(f.TokenTimeout) / float64(f.TokenMTBF+f.TokenTimeout)
	if out > 0.9 {
		out = 0.9
	}
	return 1 / (1 - out)
}

// newChannelModel builds the crossbar contention model. byDst selects the
// contended resource: the MWSR fabric arbitrates per destination home
// channel, the SWMR fabric serializes per sender channel (and has no token,
// so token outages apply only to MWSR). include, when non-nil, restricts the
// model to the events the hybrid fabric actually routes optically.
func newChannelModel(cfg config.Config, tr *trace.Trace, xb crossbar, byDst bool, include []bool) *resourceModel {
	m := newResourceModel(tr.Nodes, len(tr.Events))
	scale := driftScale(cfg.Optical, cfg.Faults)
	if byDst {
		scale *= tokenScale(cfg.Faults)
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Src == e.Dst || (include != nil && !include[i]) {
			continue
		}
		svc := float64(xb.SerializationCycles(e.Bytes)*xb.DerateFactor(e.Src, e.Dst)) * scale
		r := e.Dst
		if !byDst {
			r = e.Src
		}
		m.charge(i, r, svc)
	}
	return m
}

// newIdealModel charges each event's injection-port serialization to its
// source; with no bandwidth cap the ideal fabric is contention-free.
func newIdealModel(cfg config.Config, tr *trace.Trace) *resourceModel {
	m := newResourceModel(tr.Nodes, len(tr.Events))
	bpc := cfg.Ideal.BytesPerCycle
	if bpc <= 0 {
		return m
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Src == e.Dst {
			continue
		}
		ser := (e.Bytes + bpc - 1) / bpc
		if ser < 1 {
			ser = 1
		}
		m.charge(i, e.Src, float64(ser))
	}
	return m
}

// meshModel charges each message's flits to every directed link on its
// dimension-ordered route and sums the per-link queueing waits along the
// route. Wormhole pipelining, virtual channels, and adaptive (westfirst)
// detours are abstracted away: the estimate prices link occupancy, the
// dominant first-order effect. The per-pair route walk runs once per
// distinct (src,dst) pair with traffic — O(pairs·√nodes), independent of
// event count.
type meshModel struct {
	width int
	torus bool
	// Per directed link (node*4+dir): demanded flit cycles and messages.
	linkSvc  []float64
	linkMsgs []int64
	load     *noc.LoadMatrix
	// flitsPair aggregates exact per-event flit counts per pair (ceil is
	// not linear in bytes, so pair totals cannot be derived from the byte
	// histogram alone).
	flitsPair []float64
	evPair    []int32 // src*nodes+dst per event, −1 for none
}

const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
	numDirs
)

func flitsFor(bytes, flitBytes int) int {
	f := (bytes + flitBytes - 1) / flitBytes
	if f < 1 {
		f = 1
	}
	return f
}

// newMeshModel builds the link-utilization model. include, when non-nil,
// restricts it to the events the hybrid fabric routes electrically.
func newMeshModel(cfg config.Config, tr *trace.Trace, include []bool) *meshModel {
	nodes := tr.Nodes
	width := 1
	for width*width < nodes {
		width++
	}
	m := &meshModel{
		width:     width,
		torus:     cfg.Mesh.Topology == "torus",
		linkSvc:   make([]float64, nodes*numDirs),
		linkMsgs:  make([]int64, nodes*numDirs),
		load:      noc.NewLoadMatrix(nodes),
		flitsPair: make([]float64, nodes*nodes),
		evPair:    make([]int32, len(tr.Events)),
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		m.evPair[i] = -1
		if e.Src == e.Dst || (include != nil && !include[i]) {
			continue
		}
		m.load.Add(e.Src, e.Dst, e.Bytes)
		m.flitsPair[e.Src*nodes+e.Dst] += float64(flitsFor(e.Bytes, cfg.Mesh.FlitBytes))
		m.evPair[i] = int32(e.Src*nodes + e.Dst)
	}
	m.load.ForEachPair(func(src, dst int, pl noc.PairLoad) {
		flits := m.flitsPair[src*nodes+dst]
		m.walk(src, dst, func(link int) {
			m.linkSvc[link] += flits
			m.linkMsgs[link] += pl.Messages
		})
	})
	return m
}

// walk visits the directed links of the dimension-ordered (X then Y) route,
// taking the torus wraparound whenever it is strictly shorter — the same
// distance rule the fabric's ZeroLoadLatency uses.
func (m *meshModel) walk(src, dst int, visit func(link int)) {
	w := m.width
	x, y := src%w, src/w
	dx, dy := dst%w, dst/w
	// forward reports whether the +1 direction is the (strictly) shorter
	// way from cur to want; on torus ties and on meshes it goes with the
	// sign of the plain delta.
	forward := func(cur, want int) bool {
		d := want - cur
		abs := d
		if abs < 0 {
			abs = -abs
		}
		if m.torus && w-abs < abs {
			return d < 0
		}
		return d > 0
	}
	for x != dx {
		if forward(x, dx) {
			visit((y*w+x)*numDirs + dirEast)
			x = (x + 1) % w
		} else {
			visit((y*w+x)*numDirs + dirWest)
			x = (x - 1 + w) % w
		}
	}
	for y != dy {
		if forward(y, dy) {
			visit((y*w+x)*numDirs + dirSouth)
			y = (y + 1) % w
		} else {
			visit((y*w+x)*numDirs + dirNorth)
			y = (y - 1 + w) % w
		}
	}
}

func (m *meshModel) seed(lat0 []sim.Tick, T float64) []sim.Tick {
	linkWait := make([]float64, len(m.linkSvc))
	for l := range m.linkSvc {
		if m.linkMsgs[l] == 0 {
			continue
		}
		rho := m.linkSvc[l] / T
		if rho > maxUtilization {
			rho = maxUtilization
		}
		mean := m.linkSvc[l] / float64(m.linkMsgs[l])
		linkWait[l] = rho / (1 - rho) * mean / 2
	}
	nodes := m.load.Nodes()
	pairWait := make([]float64, nodes*nodes)
	m.load.ForEachPair(func(src, dst int, _ noc.PairLoad) {
		var sum float64
		m.walk(src, dst, func(link int) { sum += linkWait[link] })
		pairWait[src*nodes+dst] = sum
	})
	out := make([]sim.Tick, len(lat0))
	for i := range lat0 {
		out[i] = lat0[i]
		if p := m.evPair[i]; p >= 0 {
			out[i] += sim.Tick(pairWait[p] + 0.5)
		}
	}
	return out
}

// hybridModel splits the trace by the hybrid routing rule and runs the
// crossbar model on the optically routed events and the mesh model on the
// rest; each event waits on exactly one sub-fabric.
type hybridModel struct {
	optical model
	mesh    model
}

func newHybridModel(cfg config.Config, tr *trace.Trace, hy *hybrid.Network) (*hybridModel, error) {
	xb, ok := hy.Optical().(crossbar)
	if !ok {
		return nil, fmt.Errorf("analytic: hybrid optical sub-fabric %T lacks the crossbar surface", hy.Optical())
	}
	width := 1
	for width*width < tr.Nodes {
		width++
	}
	optRouted := make([]bool, len(tr.Events))
	meshRouted := make([]bool, len(tr.Events))
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Src == e.Dst {
			continue
		}
		sx, sy := e.Src%width, e.Src/width
		dx, dy := e.Dst%width, e.Dst/width
		dist := int(math.Abs(float64(dx-sx)) + math.Abs(float64(dy-sy)))
		// The routing rule, including the droop-blacklist fallback: long
		// hops go optical unless their lightpath is derated.
		if dist >= cfg.Hybrid.Threshold && xb.DerateFactor(e.Src, e.Dst) == 1 {
			optRouted[i] = true
		} else {
			meshRouted[i] = true
		}
	}
	byDst := cfg.Optical.Architecture != "swmr"
	return &hybridModel{
		optical: newChannelModel(cfg, tr, xb, byDst, optRouted),
		mesh:    newMeshModel(cfg, tr, meshRouted),
	}, nil
}

func (m *hybridModel) seed(lat0 []sim.Tick, T float64) []sim.Tick {
	// Each event is charged by exactly one sub-model; the other leaves its
	// entry at lat0, so combining is a per-event max.
	a := m.optical.seed(lat0, T)
	b := m.mesh.seed(lat0, T)
	for i := range a {
		if b[i] > a[i] {
			a[i] = b[i]
		}
	}
	return a
}
