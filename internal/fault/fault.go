// Package fault schedules deterministic device-level faults for the optical
// fabrics: thermal drift windows that detune a channel's ring bank, and
// lost-arbitration-token events that stall an MWSR home channel until a
// timeout-and-regenerate recovery fires. (The third fault class, laser power
// droop, is a static property and lives in photonics.ComputeBudgetWithDroop.)
//
// Every schedule is a pure function of (seed, fault parameters, channel):
// each channel owns independent RNG streams (sim.NewStream) whose windows are
// generated lazily but append-only, so queries are stateless binary searches.
// That makes the timelines identical under full-cycle ticking, idle-cycle
// skipping, fabric Reset between self-correction rounds, and per-channel
// sharding — the property the byte-identical determinism contract rests on.
package fault

import (
	"fmt"
	"sort"

	"onocsim/internal/config"
	"onocsim/internal/sim"
)

// Window is one half-open fault interval [Start, End).
type Window struct {
	Start, End sim.Tick
}

// timeline lazily materializes the windows of one fault class on one channel.
// Windows are strictly disjoint and separated by at least one cycle, so a
// query instant lies in at most one window and recovery at End can never land
// inside the next window.
type timeline struct {
	rng  *sim.RNG
	mtbf int64
	dur  sim.Tick
	wins []Window
}

// extendPast appends windows until the newest one starts strictly after t,
// guaranteeing both at(t) and nextStart(t) can answer from wins alone.
func (tl *timeline) extendPast(t sim.Tick) {
	for len(tl.wins) == 0 || tl.wins[len(tl.wins)-1].Start <= t {
		var prev sim.Tick
		if n := len(tl.wins); n > 0 {
			prev = tl.wins[n-1].End
		}
		// Gap ∈ [1+mtbf/2, 1+3·mtbf/2): mean ≈ mtbf, never zero, so
		// consecutive windows never touch.
		gap := sim.Tick(1 + tl.mtbf/2 + int64(tl.rng.Intn(int(tl.mtbf))))
		start := prev + gap
		tl.wins = append(tl.wins, Window{Start: start, End: start + tl.dur})
	}
}

// at returns the window containing t, if any.
func (tl *timeline) at(t sim.Tick) (Window, bool) {
	tl.extendPast(t)
	i := sort.Search(len(tl.wins), func(i int) bool { return tl.wins[i].End > t })
	if i < len(tl.wins) && tl.wins[i].Start <= t {
		return tl.wins[i], true
	}
	return Window{}, false
}

// nextStart returns the first window start strictly after t.
func (tl *timeline) nextStart(t sim.Tick) sim.Tick {
	tl.extendPast(t)
	i := sort.Search(len(tl.wins), func(i int) bool { return tl.wins[i].Start > t })
	return tl.wins[i].Start
}

// Injector answers fault-schedule queries for one fabric instance. A nil
// Injector is valid and reports no faults, so fabrics can hold one
// unconditionally.
type Injector struct {
	cfg   config.Faults
	drift []*timeline
	token []*timeline
}

// New builds the injector for a fabric of the given node count. It returns
// nil when neither scheduled fault class is enabled (laser droop needs no
// schedule). The per-channel streams derive from the run seed and the fault
// parameters only — exactly the fields an operation's cache key keeps — so a
// memoized result can never be replayed against a different fault timeline.
func New(nodes int, f config.Faults, seed uint64) *Injector {
	if nodes < 1 || (f.ThermalMTBF <= 0 && f.TokenMTBF <= 0) {
		return nil
	}
	base := BaseSeed(seed, f)
	in := &Injector{cfg: f}
	if f.ThermalMTBF > 0 {
		in.drift = make([]*timeline, nodes)
		for ch := range in.drift {
			in.drift[ch] = &timeline{
				rng:  sim.NewStream(base, fmt.Sprintf("drift/%d", ch)),
				mtbf: f.ThermalMTBF,
				dur:  sim.Tick(f.ThermalDuration),
			}
		}
	}
	if f.TokenMTBF > 0 {
		in.token = make([]*timeline, nodes)
		for ch := range in.token {
			in.token[ch] = &timeline{
				rng:  sim.NewStream(base, fmt.Sprintf("token/%d", ch)),
				mtbf: f.TokenMTBF,
				dur:  sim.Tick(f.TokenTimeout),
			}
		}
	}
	return in
}

// BaseSeed folds the run seed and every fault parameter into the root seed
// all per-channel streams derive from. Distinct fault sections therefore get
// fully decorrelated schedules even under the same run seed.
func BaseSeed(seed uint64, f config.Faults) uint64 {
	label := fmt.Sprintf("fault/%d/%d/%g/%d/%d/%g",
		f.ThermalMTBF, f.ThermalDuration, f.ThermalDetune,
		f.TokenMTBF, f.TokenTimeout, f.LaserDroopDB)
	return sim.NewStream(seed, label).Uint64()
}

// TokenFaults reports whether lost-token events are scheduled.
func (in *Injector) TokenFaults() bool { return in != nil && in.token != nil }

// ThermalFaults reports whether thermal drift windows are scheduled.
func (in *Injector) ThermalFaults() bool { return in != nil && in.drift != nil }

// DriftAt reports whether channel ch's ring bank is detuned at instant t.
func (in *Injector) DriftAt(ch int, t sim.Tick) bool {
	if !in.ThermalFaults() {
		return false
	}
	_, ok := in.drift[ch].at(t)
	return ok
}

// TokenOutage reports whether instant t falls inside a lost-token window on
// channel ch, returning the recovery instant (window end, always > t).
func (in *Injector) TokenOutage(ch int, t sim.Tick) (sim.Tick, bool) {
	if !in.TokenFaults() {
		return 0, false
	}
	w, ok := in.token[ch].at(t)
	return w.End, ok
}

// NextTokenOutage returns the start of the first lost-token window on channel
// ch that begins strictly after t, or sim.Never when the class is disabled.
func (in *Injector) NextTokenOutage(ch int, t sim.Tick) sim.Tick {
	if !in.TokenFaults() {
		return sim.Never
	}
	return in.token[ch].nextStart(t)
}
