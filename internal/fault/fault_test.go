package fault

import (
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/sim"
)

func heavy() config.Faults {
	f, err := config.FaultPreset("heavy")
	if err != nil {
		panic(err)
	}
	return f
}

// TestNilInjectorSafe pins the nil contract: fabrics hold one unconditionally.
func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.TokenFaults() || in.ThermalFaults() || in.DriftAt(0, 100) {
		t.Error("nil injector reported faults")
	}
	if _, ok := in.TokenOutage(0, 100); ok {
		t.Error("nil injector reported a token outage")
	}
	if in.NextTokenOutage(0, 100) != sim.Never {
		t.Error("nil injector scheduled a token outage")
	}
	if New(16, config.Faults{}, 42) != nil {
		t.Error("fault-free config built an injector")
	}
	if New(16, config.Faults{LaserDroopDB: 3}, 42) != nil {
		t.Error("droop-only config built an injector (droop is static, not scheduled)")
	}
}

// TestDeterministic checks two injectors over the same (nodes, faults, seed)
// answer every query identically regardless of query order — the property
// sharded replay and self-correction rounds rest on.
func TestDeterministic(t *testing.T) {
	const nodes, horizon = 8, 200_000
	a := New(nodes, heavy(), 42)
	b := New(nodes, heavy(), 42)
	// Probe b backwards to prove answers don't depend on query order.
	for ch := 0; ch < nodes; ch++ {
		for i := 0; i < 200; i++ {
			ta := sim.Tick(i * (horizon / 200))
			tb := sim.Tick((199 - i) * (horizon / 200))
			if a.DriftAt(ch, tb) != b.DriftAt(ch, tb) {
				t.Fatalf("drift(%d,%d) disagrees", ch, tb)
			}
			ea, oka := a.TokenOutage(ch, ta)
			eb, okb := b.TokenOutage(ch, ta)
			if ea != eb || oka != okb {
				t.Fatalf("outage(%d,%d): (%d,%v) vs (%d,%v)", ch, ta, ea, oka, eb, okb)
			}
			if a.NextTokenOutage(ch, ta) != b.NextTokenOutage(ch, ta) {
				t.Fatalf("nextOutage(%d,%d) disagrees", ch, ta)
			}
		}
	}
}

// TestSeedsDecorrelate checks distinct seeds and distinct fault sections give
// distinct schedules.
func TestSeedsDecorrelate(t *testing.T) {
	if BaseSeed(42, heavy()) == BaseSeed(43, heavy()) {
		t.Error("seeds collide")
	}
	light, _ := config.FaultPreset("light")
	if BaseSeed(42, heavy()) == BaseSeed(42, light) {
		t.Error("fault sections collide")
	}
}

// TestWindowInvariants walks a long stretch of one timeline checking windows
// are strictly disjoint, separated by ≥1 cycle, and exactly TokenTimeout
// long — the invariants the recovery logic in onoc depends on.
func TestWindowInvariants(t *testing.T) {
	f := heavy()
	in := New(2, f, 7)
	tl := in.token[1]
	tl.extendPast(2_000_000)
	if len(tl.wins) < 10 {
		t.Fatalf("only %d windows in 2M cycles", len(tl.wins))
	}
	var prev Window
	for i, w := range tl.wins {
		if w.End-w.Start != sim.Tick(f.TokenTimeout) {
			t.Fatalf("window %d length %d, want %d", i, w.End-w.Start, f.TokenTimeout)
		}
		if i > 0 && w.Start <= prev.End {
			t.Fatalf("window %d starts at %d, inside/adjacent to previous end %d", i, w.Start, prev.End)
		}
		prev = w
	}
	// Query membership agrees with the raw windows at every boundary.
	for _, w := range tl.wins[:10] {
		if _, ok := in.TokenOutage(1, w.Start-1); ok {
			t.Fatalf("outage reported just before window start %d", w.Start)
		}
		if end, ok := in.TokenOutage(1, w.Start); !ok || end != w.End {
			t.Fatalf("outage missing at window start %d", w.Start)
		}
		if end, ok := in.TokenOutage(1, w.End-1); !ok || end != w.End {
			t.Fatalf("outage missing at last covered instant %d", w.End-1)
		}
		if _, ok := in.TokenOutage(1, w.End); ok {
			t.Fatalf("outage reported at recovery instant %d", w.End)
		}
		if next := in.NextTokenOutage(1, w.Start); next <= w.Start {
			t.Fatalf("NextTokenOutage(%d) = %d not strictly after", w.Start, next)
		}
	}
}

// TestChannelsIndependent checks per-channel streams differ: a fabric-wide
// synchronized outage would be a far weaker fault model.
func TestChannelsIndependent(t *testing.T) {
	in := New(4, heavy(), 42)
	same := true
	for ch := 1; ch < 4; ch++ {
		if in.NextTokenOutage(ch, 0) != in.NextTokenOutage(0, 0) {
			same = false
		}
	}
	if same {
		t.Error("all channels share one token schedule")
	}
}
