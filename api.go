// Package onocsim is a full-system simulator for Optical Network-on-Chip
// research, reproducing "Self-Correction Trace Model: A Full-System
// Simulator for Optical Network-on-Chip" (Zhang, He, Fan — IPDPSW 2012).
//
// The package offers four ways to evaluate a workload on a fabric:
//
//   - RunExecutionDriven: the slow, accurate reference — cores, caches and
//     coherence co-simulated with the network.
//   - CaptureTrace + RunNaiveReplay: conventional trace-driven simulation,
//     fast but wrong when the target fabric differs from the capture fabric.
//   - CaptureTrace + RunSelfCorrection: the paper's Self-Correction Trace
//     Model — iterated dependency-driven replay converging to near
//     execution-driven accuracy at trace-driven cost.
//   - CaptureTrace + RunCoupledReplay: a tightly coupled dependency replay,
//     the upper-accuracy single-pass reference.
//
// Fabrics: an electrical wormhole mesh (baseline), a Corona-class optical
// crossbar (the ONOC under study), and an ideal fixed-latency capture
// fabric. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reconstructed paper evaluation.
package onocsim

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"onocsim/internal/analytic"
	"onocsim/internal/config"
	"onocsim/internal/core"
	"onocsim/internal/cpu"
	"onocsim/internal/enoc"
	"onocsim/internal/hybrid"
	"onocsim/internal/metrics"
	"onocsim/internal/noc"
	"onocsim/internal/onoc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
	"onocsim/internal/workload"
)

// Re-exported types: the stable public surface. Aliases keep the public API
// thin while the implementations live in internal packages.
type (
	// Config is the root experiment configuration.
	Config = config.Config
	// NetworkKind selects a fabric.
	NetworkKind = config.NetworkKind
	// Network is the fabric contract shared by all interconnect models.
	Network = noc.Network
	// Message is one network transaction.
	Message = noc.Message
	// Trace is a dependency-annotated communication trace.
	Trace = trace.Trace
	// ReplayResult is the outcome of one trace replay.
	ReplayResult = core.ReplayResult
	// CorrectionResult is the outcome of the self-correction loop.
	CorrectionResult = core.CorrectionResult
	// Accuracy is a replay-vs-ground-truth comparison.
	Accuracy = core.Accuracy
	// AnalyticEstimate is a closed-form contention-aware latency estimate.
	AnalyticEstimate = analytic.Result
	// TraceSource yields repeated decode passes over a stored trace; the
	// streaming replay engines consume one instead of a materialized Trace.
	TraceSource = trace.Source
	// TraceMeta is the trace header a TraceSource knows without decoding.
	TraceMeta = trace.Meta
	// ReplaySummary is the constant-residency replay result (no per-event
	// time vectors).
	ReplaySummary = core.ReplaySummary
	// Tick is simulated time in cycles.
	Tick = sim.Tick
	// Table renders experiment results as ASCII or CSV.
	Table = metrics.Table
	// SyntheticResult summarizes one open-loop synthetic traffic run.
	SyntheticResult = workload.SyntheticResult
)

// Fabric kinds.
const (
	Electrical = config.NetElectrical
	Optical    = config.NetOptical
	IdealNet   = config.NetIdeal
	// Hybrid routes short hops electrically, long hops optically.
	Hybrid = config.NetHybrid
)

// DefaultConfig returns the validated baseline configuration (64 cores,
// canonical mesh and crossbar parameters, stencil kernel).
func DefaultConfig() Config { return config.Default() }

// LoadConfig reads and validates a JSON configuration file.
func LoadConfig(path string) (Config, error) { return config.Load(path) }

// BuildNetwork constructs a fresh fabric of the given kind for the config.
func BuildNetwork(cfg Config, kind NetworkKind) (Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case config.NetElectrical:
		return enoc.New(cfg.System.Cores, cfg.Mesh), nil
	case config.NetOptical:
		if cfg.Optical.Architecture == "swmr" {
			return onoc.NewSWMRWithFaults(cfg.System.Cores, cfg.Optical, cfg.Faults, cfg.Seed), nil
		}
		return onoc.NewWithFaults(cfg.System.Cores, cfg.Optical, cfg.Faults, cfg.Seed), nil
	case config.NetIdeal:
		return noc.NewIdeal(cfg.System.Cores, sim.Tick(cfg.Ideal.LatencyCycles), cfg.Ideal.BytesPerCycle), nil
	case config.NetHybrid:
		return hybrid.NewWithFaults(cfg.System.Cores, cfg.Mesh, cfg.Optical, cfg.Hybrid.Threshold, cfg.Faults, cfg.Seed), nil
	default:
		return nil, fmt.Errorf("onocsim: unknown network kind %q", kind)
	}
}

// ValidateNetworkKind checks that a fabric of the given kind can be built for
// the config, without materializing one. Config validation already guarantees
// the constructor preconditions (node count, channel capacity, geometry), so
// only the kind itself needs checking.
func ValidateNetworkKind(cfg Config, kind NetworkKind) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	switch kind {
	case config.NetElectrical, config.NetOptical, config.NetIdeal, config.NetHybrid:
		return nil
	default:
		return fmt.Errorf("onocsim: unknown network kind %q", kind)
	}
}

// NetworkFactory returns a constructor for fresh fabrics of the given kind;
// the self-correction loop uses one per iteration (or resets and reuses one,
// when the fabric supports it).
func NetworkFactory(cfg Config, kind NetworkKind) (core.NetworkFactory, error) {
	if err := ValidateNetworkKind(cfg, kind); err != nil {
		return nil, err
	}
	return func() noc.Network {
		n, err := BuildNetwork(cfg, kind)
		if err != nil {
			panic("onocsim: factory build failed after successful validation: " + err.Error())
		}
		return n
	}, nil
}

// GroundTruth is the result of an execution-driven run.
type GroundTruth struct {
	// Makespan is when the last core finished, in cycles.
	Makespan Tick
	// MeanLatency is the mean network message latency in cycles.
	MeanLatency float64
	// Cycles is the simulated length including drain.
	Cycles Tick
	// Messages is the fabric message count.
	Messages uint64
	// ClassLatency is the mean latency per virtual network, indexed by
	// noc.Class (request, response, writeback).
	ClassLatency [noc.NumClasses]float64
	// WallTime is the host time the simulation took.
	WallTime time.Duration
	// Power is the fabric power report over the run.
	Power noc.PowerReport
	// Faults counts injected-fault events the fabric absorbed (all zero
	// unless the config's Faults section enables injection).
	Faults noc.FaultCounts
}

// RunExecutionDriven runs the configured kernel workload execution-driven on
// a fabric of the given kind and returns ground-truth metrics.
func RunExecutionDriven(cfg Config, kind NetworkKind) (GroundTruth, error) {
	return RunExecutionDrivenContext(context.Background(), cfg, kind)
}

// RunExecutionDrivenContext is RunExecutionDriven with cancellable admission:
// if ctx ends while the call queues for a simulation slot, it returns the
// context error without running. Once admitted, the run proceeds to
// completion (execution-driven runs have no checkpoint to park at).
func RunExecutionDrivenContext(ctx context.Context, cfg Config, kind NetworkKind) (GroundTruth, error) {
	progs, err := workload.Generate(cfg)
	if err != nil {
		return GroundTruth{}, err
	}
	net, err := BuildNetwork(cfg, kind)
	if err != nil {
		return GroundTruth{}, err
	}
	sys, err := cpu.NewSystem(cfg, progs, net, nil)
	if err != nil {
		return GroundTruth{}, err
	}
	if err := acquireSimSlotCtx(ctx); err != nil {
		return GroundTruth{}, err
	}
	defer releaseSimSlot()
	start := time.Now()
	res, err := sys.Run(cfg.MaxCyclesOrDefault())
	if err != nil {
		return GroundTruth{}, err
	}
	gt := GroundTruth{
		Makespan:    res.Makespan,
		MeanLatency: net.Stats().MeanLatency(),
		Cycles:      res.Cycles,
		Messages:    res.Messages,
		WallTime:    time.Since(start),
		Power:       net.PowerReport(res.Cycles, clockGHz(cfg, kind)),
		Faults:      net.Stats().Faults,
	}
	for c := noc.Class(0); c < noc.NumClasses; c++ {
		gt.ClassLatency[c] = net.Stats().PerClass[c].Mean()
	}
	return gt, nil
}

// clockGHz returns the clock used to convert the simulated fabric's cycle
// counts into seconds for power reporting: the mesh clock for the
// electrical fabric, the optical system clock otherwise (the hybrid charges
// both sub-fabrics at the optical system clock it is synchronized to).
func clockGHz(cfg Config, kind NetworkKind) float64 {
	if kind == config.NetElectrical {
		return cfg.Mesh.ClockGHz
	}
	return cfg.Optical.ClockGHz
}

// CaptureTrace runs the configured kernel workload execution-driven on the
// capture fabric (by default the cheap ideal network) with recording enabled
// and returns the dependency-annotated trace.
func CaptureTrace(cfg Config, captureOn NetworkKind) (*Trace, time.Duration, error) {
	return CaptureTraceContext(context.Background(), cfg, captureOn)
}

// CaptureTraceContext is CaptureTrace with cancellable slot admission; see
// RunExecutionDrivenContext for the contract.
func CaptureTraceContext(ctx context.Context, cfg Config, captureOn NetworkKind) (*Trace, time.Duration, error) {
	progs, err := workload.Generate(cfg)
	if err != nil {
		return nil, 0, err
	}
	net, err := BuildNetwork(cfg, captureOn)
	if err != nil {
		return nil, 0, err
	}
	rec := trace.NewRecorder(cfg.System.Cores)
	sys, err := cpu.NewSystem(cfg, progs, net, rec)
	if err != nil {
		return nil, 0, err
	}
	if err := acquireSimSlotCtx(ctx); err != nil {
		return nil, 0, err
	}
	defer releaseSimSlot()
	start := time.Now()
	res, err := sys.Run(cfg.MaxCyclesOrDefault())
	if err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	tr, err := rec.Finish(cfg.Workload.Kernel, res.Makespan)
	if err != nil {
		return nil, 0, err
	}
	return tr, elapsed, nil
}

// RunNaiveReplay replays the trace at recorded timestamps on a fresh fabric
// of the given kind. With cfg.Parallelism.Shards > 1 the replay runs on the
// sharded conservative-lookahead engine; with cfg.Parallelism.Stream it runs
// on the streaming decoder (window per cfg.Parallelism.WindowEvents).
// Results are byte-identical across all three engines.
func RunNaiveReplay(cfg Config, tr *Trace, kind NetworkKind) (ReplayResult, time.Duration, error) {
	return RunNaiveReplayContext(context.Background(), cfg, tr, kind)
}

// RunNaiveReplayContext is RunNaiveReplay with cancellable slot admission;
// see RunExecutionDrivenContext for the contract.
func RunNaiveReplayContext(ctx context.Context, cfg Config, tr *Trace, kind NetworkKind) (ReplayResult, time.Duration, error) {
	if cfg.Parallelism.Stream {
		return RunNaiveReplayStreamContext(ctx, cfg, MemTraceSource(tr), kind)
	}
	if shards := cfg.Parallelism.Shards; shards > 1 {
		factory, err := NetworkFactory(cfg, kind)
		if err != nil {
			return ReplayResult{}, 0, err
		}
		if err := acquireSimSlotCtx(ctx); err != nil {
			return ReplayResult{}, 0, err
		}
		defer releaseSimSlot()
		start := time.Now()
		res, err := core.NaiveReplaySharded(factory, tr, shards)
		return res, time.Since(start), err
	}
	net, err := BuildNetwork(cfg, kind)
	if err != nil {
		return ReplayResult{}, 0, err
	}
	if err := acquireSimSlotCtx(ctx); err != nil {
		return ReplayResult{}, 0, err
	}
	defer releaseSimSlot()
	start := time.Now()
	res, err := core.NaiveReplay(net, tr)
	return res, time.Since(start), err
}

// RunCoupledReplay runs the tightly coupled dependency-driven replay.
func RunCoupledReplay(cfg Config, tr *Trace, kind NetworkKind) (ReplayResult, time.Duration, error) {
	return RunCoupledReplayContext(context.Background(), cfg, tr, kind)
}

// RunCoupledReplayContext is RunCoupledReplay with cancellable slot
// admission; see RunExecutionDrivenContext for the contract.
func RunCoupledReplayContext(ctx context.Context, cfg Config, tr *Trace, kind NetworkKind) (ReplayResult, time.Duration, error) {
	net, err := BuildNetwork(cfg, kind)
	if err != nil {
		return ReplayResult{}, 0, err
	}
	opts := core.ScheduleOptions{
		DisableSyncDeps:   cfg.SCTM.DisableSyncDeps,
		DisableCausalDeps: cfg.SCTM.DisableCausalDeps,
	}
	if err := acquireSimSlotCtx(ctx); err != nil {
		return ReplayResult{}, 0, err
	}
	defer releaseSimSlot()
	start := time.Now()
	res, err := core.CoupledReplay(net, tr, opts)
	return res, time.Since(start), err
}

// RunSelfCorrection runs the Self-Correction Trace Model against a fresh
// fabric per iteration. With cfg.Parallelism.Shards > 1 every round's replay
// runs on the sharded conservative-lookahead engine; with
// cfg.Parallelism.Stream every round streams the trace through the
// incremental decoder instead of indexing the materialized events. The
// trajectory and result are byte-identical across all engines. With cfg.SCTM.Seed =
// "analytic" the round-0 latencies come from the closed-form contention
// estimate instead of the zero-load probe, typically saving replay rounds
// on contended fabrics; when the estimator declines, the loop falls back to
// zero-load seeding.
//
// With cfg.SCTM.Incremental each round after the first resumes from a
// frozen-prefix checkpoint of the previous round instead of replaying from
// cycle zero; results stay byte-identical, and
// CorrectionResult.ReplayedEvents/SavedCycles report the work skipped. The
// streaming path (cfg.Parallelism.Stream) keeps no fabric checkpoints —
// resident memory is its whole point — and ignores the flag.
func RunSelfCorrection(cfg Config, tr *Trace, kind NetworkKind) (CorrectionResult, time.Duration, error) {
	return RunSelfCorrectionContext(context.Background(), cfg, tr, kind)
}

// ErrParked reports a self-correction run that stopped at a round boundary
// because its context ended: the returned CorrectionResult holds the valid
// partial trajectory (a byte-identical prefix of the full run), and
// Converged is false. Parked results are never cached — rerunning the same
// config resumes from scratch and, uncancelled, completes. Detect with
// errors.Is(err, ErrParked).
var ErrParked = core.ErrParked

// RunSelfCorrectionContext is RunSelfCorrection with a cancellable lifecycle:
// admission queueing aborts if ctx ends first, and a context that ends
// mid-loop parks the correction at the next round boundary — the call
// returns the partial trajectory plus an error wrapping ErrParked. The
// streaming path (cfg.Parallelism.Stream) only honors ctx during admission;
// once admitted it runs to completion.
func RunSelfCorrectionContext(ctx context.Context, cfg Config, tr *Trace, kind NetworkKind) (CorrectionResult, time.Duration, error) {
	res, _, wall, err := RunSelfCorrectionParkableContext(ctx, cfg, tr, kind, nil)
	return res, wall, err
}

// CorrectionPark is the opaque resume state of a parked self-correction run:
// the blended latency estimates, the next schedule, the trajectory so far,
// and the live round runner whose fabric checkpoints survive the park. It is
// bound to the exact (config, trace, kind) triple that produced it,
// single-use, and in-process only (fabric snapshots do not serialize).
type CorrectionPark = core.ParkState

// RunSelfCorrectionParkableContext is RunSelfCorrectionContext with explicit
// park state: a parked run returns a non-nil *CorrectionPark alongside the
// ErrParked error, and passing that state back — with the same config, trace
// and kind — resumes the loop at the parked round boundary instead of
// re-running the completed rounds. The completed result is byte-identical to
// an uninterrupted run's. The streaming path (cfg.Parallelism.Stream) never
// parks and ignores resume.
func RunSelfCorrectionParkableContext(ctx context.Context, cfg Config, tr *Trace, kind NetworkKind, resume *CorrectionPark) (CorrectionResult, *CorrectionPark, time.Duration, error) {
	factory, err := NetworkFactory(cfg, kind)
	if err != nil {
		return CorrectionResult{}, nil, 0, err
	}
	if err := acquireSimSlotCtx(ctx); err != nil {
		return CorrectionResult{}, nil, 0, err
	}
	defer releaseSimSlot()
	start := time.Now()
	var seed []sim.Tick
	if resume == nil && cfg.SCTM.SeedMode() == "analytic" {
		// A resumed loop starts from the state's blended latencies; seeding
		// would be discarded, so skip computing it.
		seed = analytic.Seed(cfg, kind, tr)
	}
	if cfg.Parallelism.Stream {
		// The trace is materialized here anyway, so streaming execution still
		// gets the analytic seed; only the pure-source entry point
		// (RunSelfCorrectionStream) lacks it.
		res, err := core.SelfCorrectStream(factory, trace.NewMemSource(tr), cfg.SCTM,
			cfg.Parallelism.Shards, cfg.Parallelism.WindowEvents, seed)
		return res, nil, time.Since(start), err
	}
	res, state, err := core.SelfCorrectParkableCtx(ctx, factory, tr, cfg.SCTM, cfg.Parallelism.Shards, seed, resume)
	return res, state, time.Since(start), err
}

// EstimateAnalytic prices replaying tr on the given fabric kind with the
// closed-form contention model — no event loop, microseconds instead of
// replay rounds. The estimate is the "analytic" seed's view of the run;
// Session.Estimate is the memoized form.
func EstimateAnalytic(cfg Config, tr *Trace, kind NetworkKind) (AnalyticEstimate, time.Duration, error) {
	start := time.Now()
	res, err := analytic.Estimate(cfg, kind, tr)
	return res, time.Since(start), err
}

// Compare computes the accuracy of a replay against ground truth.
func Compare(replay ReplayResult, truth GroundTruth) Accuracy {
	return core.CompareToTruth(replay.Makespan, replay.MeanLatency, truth.Makespan, truth.MeanLatency)
}

// Study is the full methodology comparison for one workload and target
// fabric: ground truth, naive replay, coupled replay, and self-correction,
// with accuracies and wall-clock costs.
type Study struct {
	Workload string
	Target   NetworkKind

	Truth    GroundTruth
	Trace    *Trace
	Naive    ReplayResult
	Coupled  ReplayResult
	SCTM     CorrectionResult
	NaiveAcc Accuracy
	CoupAcc  Accuracy
	SCTMAcc  Accuracy

	CaptureWall time.Duration
	NaiveWall   time.Duration
	CoupledWall time.Duration
	SCTMWall    time.Duration
}

// simSched bounds the simulation phases running concurrently across the
// whole process: every timed leaf operation (execution-driven run, capture,
// replay, synthetic drive) holds one slot for its entire timed region, so
// per-phase wall clocks stay honest even when studies pipeline — or the
// experiment scheduler fans whole experiments out — on an oversubscribed
// host. Leaf operations never nest, so a goroutine holds at most one slot
// and the scheduler cannot deadlock. What used to be a plain channel
// semaphore is now a SlotScheduler so the context-aware entry points can
// abandon a queued claim when their client disconnects; uncancellable
// callers pass context.Background() and behave exactly as before. Leaf
// slots are all one class and one unit — the weighted classes exist for
// request-level admission (internal/service), which runs its own scheduler
// instance over its own budget.
var simSched = NewSlotScheduler(runtime.NumCPU())

// acquireSimSlotCtx is the cancellable acquire: a caller whose context ends
// while it queues releases its admission claim and returns the context
// error instead of running an orphaned simulation. Every entry point routes
// through it — uncancellable wrappers pass context.Background().
func acquireSimSlotCtx(ctx context.Context) error {
	return simSched.Acquire(ctx, SlotMedium, 1)
}

func releaseSimSlot() { simSched.Release(1) }

// RunStudy executes the complete methodology comparison: capture the trace
// on the cheap reference fabric, measure execution-driven ground truth on
// the target, and evaluate every replay engine against it. It is the
// uncached form of Session.RunStudy; see there for the pipeline shape.
func RunStudy(cfg Config, target NetworkKind) (*Study, error) {
	return (*Session)(nil).RunStudy(cfg, target)
}

// RunStudyContext is RunStudy with a cancellable lifecycle; see
// Session.RunStudyContext for the contract.
func RunStudyContext(ctx context.Context, cfg Config, target NetworkKind) (*Study, error) {
	return (*Session)(nil).RunStudyContext(ctx, cfg, target)
}

// RunSyntheticLoad drives a fresh fabric of the given kind open-loop with
// the config's synthetic workload and reports latency/throughput. The
// electrical flit granularity prices offered load on both fabrics so the
// numbers stay comparable.
//
// Deprecated: this wrapper cannot be cancelled while it queues for a
// simulation slot; use RunSyntheticLoadContext.
func RunSyntheticLoad(cfg Config, kind NetworkKind) (SyntheticResult, error) {
	return RunSyntheticLoadContext(context.Background(), cfg, kind)
}

// RunSyntheticLoadContext is RunSyntheticLoad with cancellable slot
// admission; see RunExecutionDrivenContext for the contract.
func RunSyntheticLoadContext(ctx context.Context, cfg Config, kind NetworkKind) (SyntheticResult, error) {
	net, err := BuildNetwork(cfg, kind)
	if err != nil {
		return SyntheticResult{}, err
	}
	if err := acquireSimSlotCtx(ctx); err != nil {
		return SyntheticResult{}, err
	}
	defer releaseSimSlot()
	return workload.RunSynthetic(net, cfg.Workload, cfg.Mesh.FlitBytes, cfg.Seed)
}

// SaveTrace / LoadTrace round-trip the binary trace format.
func SaveTrace(path string, tr *Trace) error { return trace.SaveFile(path, tr) }

// LoadTrace reads a binary trace file.
func LoadTrace(path string) (*Trace, error) { return trace.LoadFile(path) }

// OpenTraceFile opens a binary trace file as a streaming source: the header
// is validated up front, events decode incrementally on each pass, and
// resident memory stays bounded by the replay window instead of the trace
// length.
func OpenTraceFile(path string) (TraceSource, error) { return trace.NewFileSource(path) }

// MemTraceSource adapts an in-memory trace to the TraceSource contract, so
// streaming and materialized execution share one code path in callers.
func MemTraceSource(tr *Trace) TraceSource { return trace.NewMemSource(tr) }

// RunNaiveReplayStream is RunNaiveReplay over a TraceSource: the trace is
// decoded incrementally (window per cfg.Parallelism.WindowEvents) instead of
// materialized, with cfg.Parallelism.Shards honored exactly as in the
// in-memory path. Results are byte-identical to RunNaiveReplay on the same
// trace for any shard count and any sufficient window.
//
// Deprecated: this wrapper cannot be cancelled while it queues for a
// simulation slot; use RunNaiveReplayStreamContext.
func RunNaiveReplayStream(cfg Config, src TraceSource, kind NetworkKind) (ReplayResult, time.Duration, error) {
	return RunNaiveReplayStreamContext(context.Background(), cfg, src, kind)
}

// RunNaiveReplayStreamContext is RunNaiveReplayStream with cancellable slot
// admission; see RunExecutionDrivenContext for the contract.
func RunNaiveReplayStreamContext(ctx context.Context, cfg Config, src TraceSource, kind NetworkKind) (ReplayResult, time.Duration, error) {
	factory, err := NetworkFactory(cfg, kind)
	if err != nil {
		return ReplayResult{}, 0, err
	}
	if err := acquireSimSlotCtx(ctx); err != nil {
		return ReplayResult{}, 0, err
	}
	defer releaseSimSlot()
	start := time.Now()
	res, err := core.NaiveReplayStream(factory, src, cfg.Parallelism.Shards, cfg.Parallelism.WindowEvents)
	return res, time.Since(start), err
}

// RunSelfCorrectionStream is RunSelfCorrection over a TraceSource: every
// trace-touching step of the loop (zero-load probe, schedule derivation,
// replay rounds) streams from the source, and cfg.Parallelism.Shards selects
// sharded replay rounds exactly as in the in-memory path. Trajectories and
// results are byte-identical to RunSelfCorrection with the same shard count
// — except that cfg.SCTM.Seed = "analytic" is a materialized-path feature
// (the closed-form estimator wants the whole trace); streaming always seeds
// from zero-load latencies or InitialLatencyCycles.
//
// Deprecated: this wrapper cannot be cancelled while it queues for a
// simulation slot; use RunSelfCorrectionStreamContext.
func RunSelfCorrectionStream(cfg Config, src TraceSource, kind NetworkKind) (CorrectionResult, time.Duration, error) {
	return RunSelfCorrectionStreamContext(context.Background(), cfg, src, kind)
}

// RunSelfCorrectionStreamContext is RunSelfCorrectionStream with cancellable
// slot admission. Once admitted the streaming loop runs to completion: it
// keeps no fabric checkpoints to park at.
func RunSelfCorrectionStreamContext(ctx context.Context, cfg Config, src TraceSource, kind NetworkKind) (CorrectionResult, time.Duration, error) {
	factory, err := NetworkFactory(cfg, kind)
	if err != nil {
		return CorrectionResult{}, 0, err
	}
	if err := acquireSimSlotCtx(ctx); err != nil {
		return CorrectionResult{}, 0, err
	}
	defer releaseSimSlot()
	start := time.Now()
	res, err := core.SelfCorrectStream(factory, src, cfg.SCTM, cfg.Parallelism.Shards, cfg.Parallelism.WindowEvents, nil)
	return res, time.Since(start), err
}

// RunNaiveReplaySummary replays the trace at recorded timestamps with truly
// constant residency — O(window + nodes), no per-event vectors — returning
// summary metrics only. This is the fully out-of-core tier: traces far
// larger than memory replay at flat RSS. The summary fields equal the
// corresponding RunNaiveReplay fields (serial path) on the same fabric.
//
// Deprecated: this wrapper cannot be cancelled while it queues for a
// simulation slot; use RunNaiveReplaySummaryContext.
func RunNaiveReplaySummary(cfg Config, src TraceSource, kind NetworkKind) (ReplaySummary, time.Duration, error) {
	return RunNaiveReplaySummaryContext(context.Background(), cfg, src, kind)
}

// RunNaiveReplaySummaryContext is RunNaiveReplaySummary with cancellable slot
// admission; see RunExecutionDrivenContext for the contract.
func RunNaiveReplaySummaryContext(ctx context.Context, cfg Config, src TraceSource, kind NetworkKind) (ReplaySummary, time.Duration, error) {
	net, err := BuildNetwork(cfg, kind)
	if err != nil {
		return ReplaySummary{}, 0, err
	}
	if err := acquireSimSlotCtx(ctx); err != nil {
		return ReplaySummary{}, 0, err
	}
	defer releaseSimSlot()
	start := time.Now()
	res, err := core.NaiveReplaySummaryStream(net, src)
	return res, time.Since(start), err
}

// StaticPowerMW reports the load-independent power floor of a fabric built
// for cfg: router and link leakage for the mesh, laser and ring-tuning power
// for the photonic fabrics. It builds the fabric and reads its power report
// without simulating a cycle, so the value is deterministic and purely
// design-determined — the power objective the design-space sweep prices its
// Pareto fronts with (replay results carry no dynamic power; ground truth
// does, but paying an execution-driven run per arm would defeat the sweep).
func StaticPowerMW(cfg Config, kind NetworkKind) (float64, error) {
	net, err := BuildNetwork(cfg, kind)
	if err != nil {
		return 0, err
	}
	return net.PowerReport(1, clockGHz(cfg, kind)).StaticMW, nil
}
