package onocsim

import (
	"context"
	"sync"
	"testing"
	"time"
)

// waitStats polls the scheduler until cond holds or the deadline passes;
// admission is asynchronous, so tests observe it through the counters.
func waitStats(t *testing.T, s *SlotScheduler, cond func(SlotStats) bool) SlotStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached; stats %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSlotSchedulerImmediateGrant(t *testing.T) {
	s := NewSlotScheduler(2)
	if err := s.Acquire(context.Background(), SlotLight, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(context.Background(), SlotHeavy, 1); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.InUse != 2 || st.Admitted != 2 {
		t.Fatalf("stats after two grants: %+v", st)
	}
	s.Release(1)
	s.Release(1)
	if st := s.Stats(); st.InUse != 0 {
		t.Fatalf("stats after releases: %+v", st)
	}
}

// The regression the daemon needed: a caller queued behind a full scheduler
// whose context is cancelled must release its admission claim — before this
// existed, acquireSimSlot blocked unconditionally and a disconnected
// client's simulation ran anyway.
func TestSlotSchedulerCancelWhileQueuedReleasesClaim(t *testing.T) {
	s := NewSlotScheduler(1)
	if err := s.Acquire(context.Background(), SlotMedium, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(ctx, SlotMedium, 1) }()
	waitStats(t, s, func(st SlotStats) bool { return st.Queued == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
	}
	st := waitStats(t, s, func(st SlotStats) bool { return st.Queued == 0 })
	if st.Cancelled != 1 {
		t.Fatalf("cancelled counter = %d, want 1 (%+v)", st.Cancelled, st)
	}
	// The abandoned claim must not have consumed capacity: the next
	// release-acquire pair proceeds immediately.
	s.Release(1)
	if err := s.Acquire(context.Background(), SlotMedium, 1); err != nil {
		t.Fatal(err)
	}
	s.Release(1)
}

func TestSlotSchedulerAlreadyCancelledContext(t *testing.T) {
	s := NewSlotScheduler(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Acquire(ctx, SlotLight, 1); err != context.Canceled {
		t.Fatalf("acquire with dead context returned %v", err)
	}
	if st := s.Stats(); st.InUse != 0 || st.Admitted != 0 {
		t.Fatalf("dead-context acquire touched capacity: %+v", st)
	}
}

// Round-robin fairness: a full-capacity heavy request queued behind a
// continuous churn of light acquire/release traffic is admitted anyway —
// once the rotation selects the heavy head, granting stops and freed
// capacity accumulates toward it instead of being re-consumed by lights.
func TestSlotSchedulerHeavyNotStarved(t *testing.T) {
	s := NewSlotScheduler(4)
	// Fill the capacity with four single-unit holders.
	for i := 0; i < 4; i++ {
		if err := s.Acquire(context.Background(), SlotMedium, 1); err != nil {
			t.Fatal(err)
		}
	}
	heavyDone := make(chan struct{})
	go func() {
		if err := s.Acquire(context.Background(), SlotHeavy, 4); err == nil {
			close(heavyDone)
		}
	}()
	waitStats(t, s, func(st SlotStats) bool { return st.Queued == 1 })
	// Churn light traffic: each looper acquires, holds briefly, releases,
	// repeats. Without anti-starvation this stream would re-fill every
	// freed unit and the heavy's 4 units would never accumulate.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-heavyDone:
					return
				default:
				}
				if err := s.Acquire(context.Background(), SlotLight, 1); err != nil {
					return
				}
				time.Sleep(time.Millisecond)
				s.Release(1)
			}
		}()
	}
	// Drain the original holders one unit at a time under light churn.
	for i := 0; i < 4; i++ {
		time.Sleep(2 * time.Millisecond)
		s.Release(1)
	}
	select {
	case <-heavyDone:
		s.Release(4)
	case <-time.After(10 * time.Second):
		t.Fatal("heavy waiter starved behind light stream")
	}
	wg.Wait()
}

// Costs above capacity clamp instead of queueing forever.
func TestSlotSchedulerClampsOversizedCost(t *testing.T) {
	s := NewSlotScheduler(2)
	if err := s.Acquire(context.Background(), SlotHeavy, 100); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.InUse != 2 {
		t.Fatalf("oversized cost not clamped: %+v", st)
	}
	s.Release(100)
	if st := s.Stats(); st.InUse != 0 {
		t.Fatalf("oversized release not clamped: %+v", st)
	}
}

// Hammer the scheduler from many goroutines with mixed classes, costs and
// cancellations; accounting must come out exact. Run with -race.
func TestSlotSchedulerConcurrentAccounting(t *testing.T) {
	s := NewSlotScheduler(3)
	var wg sync.WaitGroup
	for i := 0; i < 48; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			class := SlotClass(i % int(numSlotClasses))
			cost := 1 + i%3
			ctx := context.Background()
			if i%5 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%7)*time.Millisecond)
				defer cancel()
			}
			if err := s.Acquire(ctx, class, cost); err != nil {
				return
			}
			time.Sleep(time.Duration(i%3) * time.Millisecond)
			s.Release(cost)
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.InUse != 0 || st.Queued != 0 {
		t.Fatalf("units leaked: %+v", st)
	}
}
