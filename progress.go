package onocsim

import "time"

// ProgressKind classifies a ProgressEvent.
type ProgressKind uint8

const (
	// ProgressExperimentStart fires when an experiment begins.
	ProgressExperimentStart ProgressKind = iota
	// ProgressExperimentDone fires when an experiment finishes (Err carries
	// the failure, if any; Elapsed the host time it took).
	ProgressExperimentDone
	// ProgressSimComputed fires when a session actually runs a simulation.
	ProgressSimComputed
	// ProgressSimCacheHit fires when a session serves a result from memory.
	ProgressSimCacheHit
	// ProgressSimWait fires when a request blocks on a concurrent in-flight
	// computation of the same result (single-flight dedup at work).
	ProgressSimWait
	// ProgressSimDiskHit fires when a session loads a result persisted by an
	// earlier invocation.
	ProgressSimDiskHit
	// ProgressSweepArm fires when a design-space sweep resolves one grid arm:
	// Sim carries the arm label, Op the phase ("estimate", "pruned",
	// "simulated"). The onocsimd /v1/sweeps endpoint streams these as
	// per-arm SSE progress.
	ProgressSweepArm
)

// String names the kind for log lines.
func (k ProgressKind) String() string {
	switch k {
	case ProgressExperimentStart:
		return "start"
	case ProgressExperimentDone:
		return "done"
	case ProgressSimComputed:
		return "computed"
	case ProgressSimCacheHit:
		return "cache-hit"
	case ProgressSimWait:
		return "wait"
	case ProgressSimDiskHit:
		return "disk-hit"
	case ProgressSweepArm:
		return "sweep-arm"
	default:
		return "unknown"
	}
}

// ProgressEvent is one observation of the experiment pipeline: an experiment
// starting or finishing, or a session resolving one simulation (computed
// fresh, deduplicated against a concurrent computation, or served from the
// memory/disk cache).
type ProgressEvent struct {
	// Kind classifies the event and selects which fields below are set.
	Kind ProgressKind
	// Experiment is the experiment id ("r1") for experiment events.
	Experiment string
	// Title is the experiment's table title, on start events.
	Title string
	// Sim describes the simulation's cache key, on simulation events.
	Sim string
	// Op is the simulation operation ("truth", "capture", …), on simulation
	// events.
	Op string
	// Err is the failure, on done events of failed experiments.
	Err error
	// Elapsed is the experiment's host time, on done events.
	Elapsed time.Duration
}

// Progress observes the experiment pipeline. Implementations must be safe
// for concurrent use: the parallel scheduler and the session deliver events
// from many goroutines. cmd/expreport streams them to stderr; service
// callers can fan them out to clients.
type Progress interface {
	Event(ProgressEvent)
}

// ProgressFunc adapts a function to the Progress interface. The function is
// called from simulation goroutines and must be safe for concurrent use.
type ProgressFunc func(ProgressEvent)

// Event implements Progress.
func (f ProgressFunc) Event(ev ProgressEvent) { f(ev) }
