package onocsim_test

import (
	"fmt"

	"onocsim"
)

// ExampleCompare shows how replay estimates are scored against
// execution-driven ground truth.
func ExampleCompare() {
	truth := onocsim.GroundTruth{Makespan: 10000, MeanLatency: 40}
	replay := onocsim.ReplayResult{Makespan: 10500, MeanLatency: 42}
	acc := onocsim.Compare(replay, truth)
	fmt.Printf("makespan error %.1f%%, latency error %.1f%%\n",
		acc.MakespanErr*100, acc.LatencyErr*100)
	// Output:
	// makespan error 5.0%, latency error 5.0%
}

// ExampleRunStudy runs the complete methodology comparison on a small chip.
// The simulators are deterministic, so the resulting relationship — the
// self-correction model beating naive replay — is reproducible.
func ExampleRunStudy() {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Kernel = "stencil"
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2

	study, err := onocsim.RunStudy(cfg, onocsim.Optical)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("self-correction beats naive replay: %v\n",
		study.SCTMAcc.MakespanErr < study.NaiveAcc.MakespanErr)
	fmt.Printf("converged: %v\n", study.SCTM.Converged)
	// Output:
	// self-correction beats naive replay: true
	// converged: true
}

// ExampleCaptureTrace demonstrates the trace capture + save/load round trip.
func ExampleCaptureTrace() {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Kernel = "lu"
	cfg.Workload.Scale = 4

	tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("captured a valid trace: %v\n", tr.Validate() == nil)
	fmt.Printf("events > 0: %v\n", tr.NumEvents() > 0)
	// Output:
	// captured a valid trace: true
	// events > 0: true
}
