package onocsim

import (
	"context"
	"sync"
)

// SlotClass coarsely prices an admission request against a SlotScheduler's
// capacity. The classes mirror the experiment registry's cost classes
// (internal/experiments.CostClass): a service maps each incoming request to
// a class so the scheduler can keep bursts of heavy work from starving
// cheap probes and vice versa.
type SlotClass uint8

const (
	// SlotLight requests are analytic or near-instant.
	SlotLight SlotClass = iota
	// SlotMedium requests run a handful of simulations.
	SlotMedium
	// SlotHeavy requests sweep many full-system simulations.
	SlotHeavy

	numSlotClasses
)

// String names the class for logs and stats.
func (c SlotClass) String() string {
	switch c {
	case SlotLight:
		return "light"
	case SlotMedium:
		return "medium"
	case SlotHeavy:
		return "heavy"
	default:
		return "unknown"
	}
}

// SlotStats is a snapshot of a SlotScheduler's admission traffic.
type SlotStats struct {
	// Capacity is the fixed budget in admission units.
	Capacity int `json:"capacity"`
	// InUse is how many units admitted requests currently hold.
	InUse int `json:"in_use"`
	// Queued is how many requests are waiting for admission right now.
	Queued int `json:"queued"`
	// Admitted counts grants over the scheduler's lifetime.
	Admitted uint64 `json:"admitted"`
	// Cancelled counts requests that gave up (context cancelled) while
	// queued — each one released its claim without ever running.
	Cancelled uint64 `json:"cancelled"`
}

// slotWaiter is one queued admission request. ready is closed exactly once,
// under the scheduler lock, when the grant lands; granted disambiguates the
// race between a grant and a cancellation.
type slotWaiter struct {
	class   SlotClass
	cost    int
	ready   chan struct{}
	granted bool
}

// SlotScheduler is a context-aware weighted fair admission scheduler: the
// generalization of the process-wide simulation-slot semaphore. Requests
// acquire cost units of a fixed capacity; when the capacity is exhausted
// they queue per cost class, and freed units are granted round-robin across
// the classes with waiters so no class starves behind a burst of another.
// Within a class, admission is FIFO. When the rotation selects a head whose
// cost does not yet fit, granting stops entirely and freed capacity
// accumulates toward that head — a large request is never bypassed
// indefinitely by a stream of small ones.
//
// A waiter whose context is cancelled while queued releases its admission
// claim and returns the context's error: a disconnected client stops
// occupying the queue instead of running an orphaned simulation.
//
// The zero value is not usable; construct with NewSlotScheduler.
type SlotScheduler struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	queues   [numSlotClasses][]*slotWaiter
	rr       SlotClass
	admitted uint64
	canceled uint64
}

// NewSlotScheduler returns a scheduler over the given capacity in admission
// units; capacities below one are raised to one.
func NewSlotScheduler(capacity int) *SlotScheduler {
	if capacity < 1 {
		capacity = 1
	}
	return &SlotScheduler{capacity: capacity}
}

// clampCost normalizes a request cost: at least one unit, and never more
// than the whole capacity (a cost that can never fit would queue forever).
func (s *SlotScheduler) clampCost(cost int) int {
	if cost < 1 {
		cost = 1
	}
	if cost > s.capacity {
		cost = s.capacity
	}
	return cost
}

// Acquire claims cost units of the capacity, blocking until they are granted
// or ctx is done. A nil error means the units are held and must be handed
// back via Release with the same cost. Cancellation while queued removes the
// waiter and releases nothing; cancellation that races an in-flight grant
// returns the units before reporting the context error, so accounting stays
// exact either way.
func (s *SlotScheduler) Acquire(ctx context.Context, class SlotClass, cost int) error {
	if class >= numSlotClasses {
		class = SlotMedium
	}
	cost = s.clampCost(cost)
	if err := ctx.Err(); err != nil {
		s.mu.Lock()
		s.canceled++
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	// Bypass-free fast path: immediate admission only when nobody queues,
	// otherwise a stream of small requests could starve a queued big one.
	if s.queuedLocked() == 0 && s.inUse+cost <= s.capacity {
		s.inUse += cost
		s.admitted++
		s.mu.Unlock()
		return nil
	}
	w := &slotWaiter{class: class, cost: cost, ready: make(chan struct{})}
	s.queues[class] = append(s.queues[class], w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.granted {
		// The grant landed between ctx.Done firing and the lock: hand the
		// units straight back so the claim never leaks.
		s.releaseLocked(w.cost)
		s.canceled++
		return ctx.Err()
	}
	q := s.queues[w.class]
	for i, qw := range q {
		if qw == w {
			s.queues[w.class] = append(q[:i], q[i+1:]...)
			break
		}
	}
	s.canceled++
	return ctx.Err()
}

// Release hands back cost units claimed by a successful Acquire and grants
// them onward to queued waiters.
func (s *SlotScheduler) Release(cost int) {
	cost = s.clampCost(cost)
	s.mu.Lock()
	s.releaseLocked(cost)
	s.mu.Unlock()
}

func (s *SlotScheduler) releaseLocked(cost int) {
	s.inUse -= cost
	if s.inUse < 0 {
		s.inUse = 0
	}
	s.grantLocked()
}

// queuedLocked counts waiters across all class queues.
func (s *SlotScheduler) queuedLocked() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// grantLocked admits queued waiters while capacity lasts: round-robin across
// the classes with waiters, FIFO within a class. When the selected head does
// not fit, granting stops — the rotation cursor stays on that class, so
// freed capacity accumulates toward it instead of leaking past it.
func (s *SlotScheduler) grantLocked() {
	for {
		class, ok := s.nextClassLocked()
		if !ok {
			return
		}
		w := s.queues[class][0]
		if s.inUse+w.cost > s.capacity {
			return
		}
		s.queues[class] = s.queues[class][1:]
		s.inUse += w.cost
		s.admitted++
		s.rr = (class + 1) % numSlotClasses
		w.granted = true
		close(w.ready)
	}
}

// nextClassLocked finds the first class with waiters, scanning from the
// round-robin cursor.
func (s *SlotScheduler) nextClassLocked() (SlotClass, bool) {
	for i := SlotClass(0); i < numSlotClasses; i++ {
		c := (s.rr + i) % numSlotClasses
		if len(s.queues[c]) > 0 {
			return c, true
		}
	}
	return 0, false
}

// Stats returns a snapshot of the scheduler's admission traffic.
func (s *SlotScheduler) Stats() SlotStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SlotStats{
		Capacity:  s.capacity,
		InUse:     s.inUse,
		Queued:    s.queuedLocked(),
		Admitted:  s.admitted,
		Cancelled: s.canceled,
	}
}
