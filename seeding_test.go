package onocsim

import (
	"reflect"
	"testing"

	"onocsim/internal/workload"
)

// TestSeedModesConvergeIdentically is the seeding-correctness contract: the
// round-0 seed is a warm start, never a different answer. Every seed mode
// must converge the self-correction loop to a DeepEqual-identical Final
// replay on every fabric kind.
func TestSeedModesConvergeIdentically(t *testing.T) {
	base := smallConfig()
	// Exact convergence: with the default loose tolerances the loop may
	// stop one round early at a near-fixpoint that still carries seed
	// residue. At tolerance zero the schedule is an exact fixpoint of the
	// replay map, and every seed walks to the same one.
	base.SCTM.ToleranceCycles = 0
	base.SCTM.MakespanTolerance = 0
	// The contended fabrics need up to ~80 undamped rounds to reach their
	// exact fixpoints on this workload; damping is deliberately left off,
	// since a damped loop can stop with seed-dependent latency residue
	// still blending away.
	base.SCTM.MaxIterations = 200
	tr, _, err := CaptureTrace(base, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []NetworkKind{IdealNet, Electrical, Optical, Hybrid} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			run := func(mutate func(*Config)) CorrectionResult {
				cfg := base
				if mutate != nil {
					mutate(&cfg)
				}
				res, _, err := RunSelfCorrection(cfg, tr, kind)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatal("loop did not converge")
				}
				return res
			}
			def := run(nil)
			analytic := run(func(c *Config) { c.SCTM.Seed = "analytic" })
			fixed := run(func(c *Config) {
				c.SCTM.Seed = "fixed"
				c.SCTM.InitialLatencyCycles = 25
			})
			if !reflect.DeepEqual(def.Final, analytic.Final) {
				t.Fatalf("analytic seed changed the converged result:\n default %+v\n analytic %+v",
					def.Final, analytic.Final)
			}
			if !reflect.DeepEqual(def.Final, fixed.Final) {
				t.Fatalf("fixed seed changed the converged result:\n default %+v\n fixed %+v",
					def.Final, fixed.Final)
			}
		})
	}
}

// TestAnalyticSeedNeverSlower pins the fast path's reason to exist: on the
// R3 convergence workloads, analytic seeding must never need more replay
// rounds than zero-load seeding.
func TestAnalyticSeedNeverSlower(t *testing.T) {
	for _, kernel := range workload.KernelNames() {
		for _, kind := range []NetworkKind{Electrical, Optical} {
			t.Run(kernel+"/"+string(kind), func(t *testing.T) {
				cfg := smallConfig()
				cfg.Workload.Kernel = kernel
				tr, _, err := CaptureTrace(cfg, IdealNet)
				if err != nil {
					t.Fatal(err)
				}
				zl, _, err := RunSelfCorrection(cfg, tr, kind)
				if err != nil {
					t.Fatal(err)
				}
				an := cfg
				an.SCTM.Seed = "analytic"
				seeded, _, err := RunSelfCorrection(an, tr, kind)
				if err != nil {
					t.Fatal(err)
				}
				if len(seeded.Iterations) > len(zl.Iterations) {
					t.Fatalf("analytic seeding took %d rounds, zero-load %d",
						len(seeded.Iterations), len(zl.Iterations))
				}
			})
		}
	}
}

// TestEstimateAgainstSimulation bounds the screening error: the closed form
// must land within a loose band of the simulated result it approximates.
func TestEstimateAgainstSimulation(t *testing.T) {
	cfg := smallConfig()
	tr, _, err := CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []NetworkKind{Electrical, Optical, Hybrid} {
		est, wall, err := EstimateAnalytic(cfg, tr, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if wall <= 0 {
			t.Fatalf("%s: no wall time measured", kind)
		}
		sim, _, err := RunSelfCorrection(cfg, tr, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		ratio := float64(est.Makespan) / float64(sim.Final.Makespan)
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("%s: estimated makespan %d vs simulated %d (ratio %.2f) outside the 2x screening band",
				kind, est.Makespan, sim.Final.Makespan, ratio)
		}
	}
}

// TestSessionEstimateCached exercises the OpEstimate cache path: the second
// call must be a hit with an identical result.
func TestSessionEstimateCached(t *testing.T) {
	s := NewSession("")
	cfg := smallConfig()
	tr, _, err := s.CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := s.Estimate(cfg, tr, Optical)
	if err != nil {
		t.Fatal(err)
	}
	before := s.CacheStats()
	b, _, err := s.Estimate(cfg, tr, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cached estimate differs from computed one")
	}
	if after := s.CacheStats(); after.Hits <= before.Hits {
		t.Fatalf("second estimate missed the cache: %+v -> %+v", before, after)
	}
}
